exception Parse_error of {
  line : int;
  message : string;
}

type t = {
  timescale : string option;
  signals : (string * int) list;
  trace : Tabv_psl.Trace.t;
}

type var = {
  name : string;
  width : int;
  mutable value : int;  (* current bits, low 62 bits kept *)
}

let parse source =
  let lines = String.split_on_char '\n' source in
  let vars : (string, var) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let timescale = ref None in
  let entries = ref [] in
  let current_time = ref (-1) in
  let fail line_no message = raise (Parse_error { line = line_no; message }) in
  let snapshot () =
    if !current_time >= 0 then begin
      let env =
        List.rev_map
          (fun var ->
            ( var.name,
              if var.width = 1 then Tabv_psl.Expr.VBool (var.value <> 0)
              else Tabv_psl.Expr.VInt var.value ))
          !order
      in
      entries := { Tabv_psl.Trace.time = !current_time; env } :: !entries
    end
  in
  let bit_of_char = function
    | '1' -> 1
    | '0' | 'x' | 'X' | 'z' | 'Z' -> 0
    | _ -> -1
  in
  let in_header = ref true in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      let line = String.trim raw in
      if line = "" then ()
      else if !in_header then begin
        let words =
          List.filter (fun w -> w <> "") (String.split_on_char ' ' line)
        in
        match words with
        | "$timescale" :: rest ->
          timescale :=
            Some (String.concat " " (List.filter (fun w -> w <> "$end") rest))
        | [ "$var"; _kind; width; id; name; "$end" ]
        | [ "$var"; _kind; width; id; name; _; "$end" ] ->
          (match int_of_string_opt width with
           | Some width when width > 0 ->
             let var = { name; width; value = 0 } in
             Hashtbl.replace vars id var;
             order := var :: !order
           | Some _ | None -> fail line_no "bad $var width")
        | "$enddefinitions" :: _ -> in_header := false
        | _ -> ()  (* $date, $scope, $comment, ... *)
      end
      else
        match line.[0] with
        | '$' -> ()  (* $dumpvars / $end markers *)
        | '#' ->
          (match int_of_string_opt (String.sub line 1 (String.length line - 1)) with
           | Some time ->
             if time < !current_time then fail line_no "time going backwards"
             else if time = !current_time then ()  (* same instant continues *)
             else begin
               snapshot ();
               current_time := time
             end
           | None -> fail line_no "bad timestamp")
        | '0' | '1' | 'x' | 'X' | 'z' | 'Z' ->
          let id = String.sub line 1 (String.length line - 1) in
          (match Hashtbl.find_opt vars id with
           | Some var -> var.value <- bit_of_char line.[0]
           | None -> fail line_no (Printf.sprintf "unknown identifier %S" id))
        | 'b' | 'B' ->
          (match String.index_opt line ' ' with
           | None -> fail line_no "vector change without identifier"
           | Some space ->
             let bits = String.sub line 1 (space - 1) in
             let id =
               String.trim (String.sub line (space + 1) (String.length line - space - 1))
             in
             (match Hashtbl.find_opt vars id with
              | None -> fail line_no (Printf.sprintf "unknown identifier %S" id)
              | Some var ->
                let value = ref 0 in
                String.iter
                  (fun c ->
                    match bit_of_char c with
                    | -1 -> fail line_no (Printf.sprintf "bad vector bit %C" c)
                    | bit -> value := (!value lsl 1) lor bit)
                  bits;
                var.value <- !value))
        | _ -> fail line_no (Printf.sprintf "unexpected line %S" line))
    lines;
  snapshot ();
  {
    timescale = !timescale;
    signals = List.rev_map (fun var -> (var.name, var.width)) !order;
    trace = Tabv_psl.Trace.of_list (List.rev !entries);
  }

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
