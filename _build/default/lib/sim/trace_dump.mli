(** Dump an evaluation trace to a VCD file.

    Widths are derived from the first entry: booleans become 1-bit
    wires, integers [width]-bit vectors (default 62, the portable
    OCaml [int] payload).  The signal set is taken from the first
    entry, so traces recorded by {!Trace_rec} (whose entries share one
    environment shape) dump completely. *)

(** [to_channel ?width trace oc] writes the VCD; the channel is
    flushed but left open. *)
val to_channel : ?width:int -> Tabv_psl.Trace.t -> out_channel -> unit

(** [to_file ?width trace path] creates/overwrites [path]. *)
val to_file : ?width:int -> Tabv_psl.Trace.t -> string -> unit
