(** Free-running clock generator.

    The clock drives a boolean signal with a 50% duty cycle and
    notifies dedicated [posedge]/[negedge] events.  The first rising
    edge occurs at [start] (default 0), then every [period] ns. *)

type t

(** @raise Invalid_argument if [period] is not positive and even. *)
val create : Kernel.t -> name:string -> period:int -> ?start:int -> unit -> t

val signal : t -> bool Signal.t
val period : t -> int
val posedge : t -> Event.t
val negedge : t -> Event.t

(** Number of rising edges generated so far. *)
val cycle_count : t -> int
