(** Bounded blocking FIFO channel between thread processes (the
    [sc_fifo] of this kernel).

    [put] blocks the calling thread while the FIFO is full, [get]
    while it is empty; both resume in the delta cycle after the
    unblocking action, preserving determinism. *)

type 'a t

(** @raise Invalid_argument if [capacity < 1]. *)
val create : Kernel.t -> name:string -> capacity:int -> 'a t

val name : 'a t -> string
val capacity : 'a t -> int
val length : 'a t -> int

(** Blocking write (thread context only). *)
val put : 'a t -> 'a -> unit

(** Blocking read (thread context only). *)
val get : 'a t -> 'a

(** Non-blocking variants. *)
val try_put : 'a t -> 'a -> bool

val try_get : 'a t -> 'a option
