type t = {
  kernel : Kernel.t;
  name : string;
  mutable static : (unit -> unit) list;  (* reversed registration order *)
  mutable dynamic : (unit -> unit) list;
  mutable notifications : int;
}

let create kernel name = { kernel; name; static = []; dynamic = []; notifications = 0 }
let name t = t.name
let kernel t = t.kernel

let fire t =
  t.notifications <- t.notifications + 1;
  let dynamic = List.rev t.dynamic in
  t.dynamic <- [];
  let static = List.rev t.static in
  List.iter (fun f -> Kernel.schedule_next_delta t.kernel f) static;
  List.iter (fun f -> Kernel.schedule_next_delta t.kernel f) dynamic

let notify t = fire t

let notify_after t ~delay =
  if delay = 0 then fire t
  else Kernel.schedule_after t.kernel ~delay (fun () -> fire t)

let on_event t f = t.static <- f :: t.static
let once t f = t.dynamic <- f :: t.dynamic
let notification_count t = t.notifications
