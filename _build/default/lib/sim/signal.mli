(** Signals with SystemC [sc_signal] semantics.

    A write stores the next value; the kernel applies it in the update
    phase of the current delta.  When the applied value differs from
    the current one the signal's value-change event is notified, waking
    sensitive processes in the next delta cycle.  Reads always return
    the current (pre-update) value, which is what makes zero-delay
    feedback loops and register semantics deterministic. *)

type 'a t

(** [create kernel ~name ?equal init] — [equal] defaults to structural
    equality. *)
val create : Kernel.t -> name:string -> ?equal:('a -> 'a -> bool) -> 'a -> 'a t

val name : 'a t -> string
val read : 'a t -> 'a

(** Schedule [v] as the value after the next update phase. *)
val write : 'a t -> 'a -> unit

(** Notified each time the value actually changes. *)
val changed : 'a t -> Event.t

(** Number of effective value changes so far. *)
val change_count : 'a t -> int

(** Set the value immediately, bypassing the update phase; only for
    elaboration-time initialisation (raises once simulation time or
    delta has advanced beyond zero activity — see implementation). *)
val force : 'a t -> 'a -> unit
