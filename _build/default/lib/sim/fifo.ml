type 'a t = {
  kernel : Kernel.t;
  name : string;
  capacity : int;
  items : 'a Queue.t;
  space_freed : Event.t;
  item_added : Event.t;
}

let create kernel ~name ~capacity =
  if capacity < 1 then invalid_arg "Fifo.create: capacity must be at least 1";
  {
    kernel;
    name;
    capacity;
    items = Queue.create ();
    space_freed = Event.create kernel (name ^ ".space_freed");
    item_added = Event.create kernel (name ^ ".item_added");
  }

let name t = t.name
let capacity t = t.capacity
let length t = Queue.length t.items

let try_put t item =
  if Queue.length t.items >= t.capacity then false
  else begin
    Queue.add item t.items;
    Event.notify t.item_added;
    true
  end

let try_get t =
  match Queue.take_opt t.items with
  | None -> None
  | Some item ->
    Event.notify t.space_freed;
    Some item

let rec put t item =
  if try_put t item then ()
  else begin
    Process.wait_event t.space_freed;
    put t item
  end

let rec get t =
  match try_get t with
  | Some item -> item
  | None ->
    Process.wait_event t.item_added;
    get t
