(** Simulation processes.

    Two flavours, as in SystemC:
    {ul
    {- {e method processes}: plain callbacks re-run on each
       notification of their sensitivity events (no blocking);}
    {- {e thread processes}: coroutines implemented with OCaml 5
       effect handlers that may block with {!wait_ns},
       {!wait_event}, and {!wait_until}.}}

    Thread waits must only be used from inside a thread body; calling
    them elsewhere raises [Stdlib.Effect.Unhandled]. *)

(** Register a method process sensitive to [sensitivity].  When
    [initialize] is true (default) the body also runs once at
    elaboration (time 0, delta 0). *)
val method_process :
  Kernel.t -> name:string -> ?initialize:bool -> sensitivity:Event.t list ->
  (unit -> unit) -> unit

(** Spawn a thread process; its body starts in the first evaluation
    phase. *)
val spawn : Kernel.t -> name:string -> (unit -> unit) -> unit

(** Suspend the current thread for [delay >= 0] ns. *)
val wait_ns : Kernel.t -> int -> unit

(** Suspend the current thread until the event's next notification. *)
val wait_event : Event.t -> unit

(** Suspend until the first notification of {e any} of the events
    (SystemC's [wait(e1 | e2)]).
    @raise Invalid_argument on an empty list. *)
val wait_any : Event.t list -> unit

(** Suspend until [predicate ()] holds, re-checking at each
    notification of [on]. Returns immediately if it already holds. *)
val wait_until : on:Event.t -> (unit -> bool) -> unit
