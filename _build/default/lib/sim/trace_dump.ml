open Tabv_psl

let to_channel ?(width = 62) trace oc =
  let vcd = Vcd.create oc ~timescale:"1ns" in
  let vars =
    if Trace.length trace = 0 then []
    else
      List.map
        (fun (name, value) ->
          let var_width =
            match value with
            | Expr.VBool _ -> 1
            | Expr.VInt _ -> width
          in
          (name, Vcd.add_var vcd ~name ~width:var_width))
        (Trace.get trace 0).Trace.env
  in
  List.iter
    (fun (entry : Trace.entry) ->
      List.iter
        (fun (name, var) ->
          match Trace.lookup entry name with
          | Some (Expr.VBool v) -> Vcd.change_bool vcd ~time:entry.Trace.time var v
          | Some (Expr.VInt v) ->
            Vcd.change_int64 vcd ~time:entry.Trace.time var (Int64.of_int v)
          | None -> ())
        vars)
    (Trace.to_list trace);
  Vcd.close vcd

let to_file ?width trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
    to_channel ?width trace oc)
