(** Recorder turning simulation observations into {!Tabv_psl.Trace}
    evaluation traces.

    A testbench samples the observable environment at each evaluation
    point (clock edge at RTL, transaction end at TLM).  Multiple
    samples at the same instant overwrite each other — the last sample
    of an instant wins, matching the post-update view of the DUV. *)

type t

val create : unit -> t

(** Append (or overwrite, when [time] equals the last sample's time) a
    sample.
    @raise Invalid_argument if [time] is lower than the last sample. *)
val sample : t -> time:int -> (string * Tabv_psl.Expr.value) list -> unit

val length : t -> int
val to_trace : t -> Tabv_psl.Trace.t
val clear : t -> unit
