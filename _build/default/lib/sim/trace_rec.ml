type t = {
  mutable entries : Tabv_psl.Trace.entry list;  (* reversed *)
  mutable count : int;
}

let create () = { entries = []; count = 0 }

let sample t ~time env =
  match t.entries with
  | { Tabv_psl.Trace.time = last; _ } :: rest when last = time ->
    t.entries <- { Tabv_psl.Trace.time; env } :: rest
  | { Tabv_psl.Trace.time = last; _ } :: _ when last > time ->
    invalid_arg
      (Printf.sprintf "Trace_rec.sample: time %d before last sample %d" time last)
  | _ ->
    t.entries <- { Tabv_psl.Trace.time; env } :: t.entries;
    t.count <- t.count + 1

let length t = List.length t.entries
let to_trace t = Tabv_psl.Trace.of_list (List.rev t.entries)

let clear t =
  t.entries <- [];
  t.count <- 0
