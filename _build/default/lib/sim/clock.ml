type t = {
  kernel : Kernel.t;
  signal : bool Signal.t;
  period : int;
  posedge : Event.t;
  negedge : Event.t;
  mutable cycles : int;
}

let create kernel ~name ~period ?(start = 0) () =
  if period <= 0 || period mod 2 <> 0 then
    invalid_arg "Clock.create: period must be positive and even";
  let t =
    {
      kernel;
      signal = Signal.create kernel ~name false;
      period;
      posedge = Event.create kernel (name ^ ".posedge");
      negedge = Event.create kernel (name ^ ".negedge");
      cycles = 0;
    }
  in
  let half = period / 2 in
  let rec rise () =
    t.cycles <- t.cycles + 1;
    Signal.write t.signal true;
    Event.notify t.posedge;
    Kernel.schedule_after kernel ~delay:half fall
  and fall () =
    Signal.write t.signal false;
    Event.notify t.negedge;
    Kernel.schedule_after kernel ~delay:half rise
  in
  Kernel.schedule_at kernel ~time:start rise;
  t

let signal t = t.signal
let period t = t.period
let posedge t = t.posedge
let negedge t = t.negedge
let cycle_count t = t.cycles
