lib/checker/automaton.mli: Expr Ltl Tabv_psl
