lib/checker/progression.mli: Expr Format Ltl Tabv_psl
