lib/checker/coverage.ml: Format List Monitor Property Tabv_psl
