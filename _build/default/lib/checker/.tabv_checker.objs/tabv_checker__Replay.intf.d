lib/checker/replay.mli: Format Monitor Property Tabv_psl Trace
