lib/checker/progression.ml: Expr Format Ltl Tabv_psl
