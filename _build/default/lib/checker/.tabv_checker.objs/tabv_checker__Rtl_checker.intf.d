lib/checker/rtl_checker.mli: Clock Expr Kernel Monitor Property Tabv_psl Tabv_sim
