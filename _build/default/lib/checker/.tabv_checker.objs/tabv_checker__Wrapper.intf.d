lib/checker/wrapper.mli: Expr Kernel Monitor Property Tabv_psl Tabv_sim Tlm
