lib/checker/replay.ml: Format List Monitor Printf Property Tabv_psl Trace
