lib/checker/wrapper.ml: Context Kernel Ltl Monitor Printf Property Tabv_psl Tabv_sim Tlm
