lib/checker/coverage.mli: Format Monitor
