lib/checker/monitor.ml: Automaton Context Expr Format List Ltl Nnf Progression Property Simple_subset Tabv_psl
