lib/checker/automaton.ml: Array Expr Hashtbl List Ltl Nnf Printf Tabv_psl
