lib/checker/rtl_checker.ml: Clock Context Event Kernel List Monitor Printf Property Tabv_psl Tabv_sim
