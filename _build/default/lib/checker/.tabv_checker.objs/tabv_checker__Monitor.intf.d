lib/checker/monitor.mli: Expr Format Property Tabv_psl
