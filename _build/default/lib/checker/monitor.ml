open Tabv_psl

type failure = {
  property_name : string;
  activation_time : int;
  failure_time : int;
}

type engine =
  [ `Progression
  | `Automaton
  ]

(* The two synthesis backends share the monitor through a common
   obligation shape. *)
type obligation =
  | Prog_ob of Progression.t
  | Auto_ob of Automaton.state

type backend =
  | Prog_backend
  | Auto_backend of Automaton.t

type instance = {
  activated_at : int;
  mutable obligation : obligation;
}

type t = {
  property : Property.t;
  body : Ltl.t;
  temporal_body : bool;  (* vacuity only makes sense for temporal bodies *)
  backend : backend;
  repeating : bool;  (* outer [always]: activate per evaluation point *)
  gate : Expr.t option;
  mutable instances : instance list;  (* live, newest first *)
  mutable started : bool;
  mutable failures : failure list;
  mutable activations : int;
  mutable passes : int;
  mutable peak : int;
  mutable steps : int;
  mutable trivial_passes : int;
}

let gate_of_context = function
  | Context.Clock (Context.Base_clock | Context.Edge _ | Context.Named_edge _) ->
    None
  | Context.Clock
      (Context.Edge_and (_, gate) | Context.Named_edge_and (_, _, gate)) ->
    Some gate
  | Context.Transaction Context.Base_trans -> None
  | Context.Transaction (Context.Trans_and gate) -> Some gate

let create ?(engine = `Progression) property =
  let normalized = Nnf.convert (Ltl.demote_booleans property.Property.formula) in
  let repeating, body =
    match normalized with
    | Ltl.Always body -> (true, body)
    | other -> (false, other)
  in
  let backend =
    match engine with
    | `Progression -> Prog_backend
    | `Automaton ->
      (* Bound the table so pathological bodies fall back to the
         rewriting backend instead of exploding at synthesis time. *)
      (match Automaton.compile ~max_states:256 body with
       | automaton -> Auto_backend automaton
       | exception Automaton.Unsupported _ -> Prog_backend)
  in
  {
    property;
    body;
    temporal_body = not (Simple_subset.is_boolean body);
    backend;
    repeating;
    gate = gate_of_context property.Property.context;
    instances = [];
    started = false;
    failures = [];
    activations = 0;
    passes = 0;
    peak = 0;
    steps = 0;
    trivial_passes = 0;
  }

let property t = t.property

let engine t =
  match t.backend with
  | Prog_backend -> `Progression
  | Auto_backend _ -> `Automaton

let fresh_obligation t =
  match t.backend with
  | Prog_backend -> Prog_ob (Progression.of_formula t.body)
  | Auto_backend automaton -> Auto_ob (Automaton.initial automaton)

(* Per-evaluation-point context: the automaton backend evaluates the
   atoms once and every instance steps by table lookup. *)
type step_context =
  | Prog_ctx
  | Auto_ctx of int

let step_context t lookup =
  match t.backend with
  | Prog_backend -> Prog_ctx
  | Auto_backend automaton -> Auto_ctx (Automaton.valuation automaton lookup)

let step_obligation t ~time lookup ctx = function
  | Prog_ob ob -> Prog_ob (Progression.step ~time lookup ob)
  | Auto_ob state ->
    (match t.backend, ctx with
     | Auto_backend automaton, Auto_ctx v ->
       Auto_ob (Automaton.step_valuation automaton state v)
     | Prog_backend, _ | Auto_backend _, Prog_ctx -> assert false)

let obligation_verdict t = function
  | Prog_ob ob -> Progression.verdict ob
  | Auto_ob state ->
    (match t.backend with
     | Auto_backend automaton -> Automaton.verdict automaton state
     | Prog_backend -> assert false)

let record_outcome t ~time instance =
  match obligation_verdict t instance.obligation with
  | Some true ->
    t.passes <- t.passes + 1;
    false
  | Some false ->
    t.failures <-
      {
        property_name = t.property.Property.name;
        activation_time = instance.activated_at;
        failure_time = time;
      }
      :: t.failures;
    false
  | None -> true

let step t ~time lookup =
  let gated_out =
    match t.gate with
    | None -> false
    | Some gate -> not (Expr.eval lookup gate)
  in
  if not gated_out then begin
    t.steps <- t.steps + 1;
    let ctx = step_context t lookup in
    (* Evaluation of live instances. *)
    let survivors =
      List.filter
        (fun instance ->
          instance.obligation <-
            step_obligation t ~time lookup ctx instance.obligation;
          record_outcome t ~time instance)
        t.instances
    in
    t.instances <- survivors;
    (* Activation of a new instance. *)
    let activate () =
      let obligation = step_obligation t ~time lookup ctx (fresh_obligation t) in
      match obligation_verdict t obligation with
      | Some true ->
        t.passes <- t.passes + 1;
        t.trivial_passes <- t.trivial_passes + 1
      | Some false ->
        t.activations <- t.activations + 1;
        t.failures <-
          { property_name = t.property.Property.name; activation_time = time;
            failure_time = time }
          :: t.failures
      | None ->
        t.activations <- t.activations + 1;
        t.instances <- { activated_at = time; obligation } :: t.instances
    in
    if t.repeating then activate ()
    else if not t.started then activate ();
    t.started <- true;
    let live = List.length t.instances in
    if live > t.peak then t.peak <- live
  end

let failures t = List.rev t.failures
let live_instances t = List.length t.instances
let peak_instances t = t.peak
let activations t = t.activations
let passes t = t.passes
let steps t = t.steps
let pending t = List.length t.instances
let evaluation_table t =
  List.sort compare
    (List.filter_map
       (fun instance ->
         match instance.obligation with
         | Prog_ob ob -> Progression.next_evaluation_time ob
         | Auto_ob _ -> None)
       t.instances)

let trivial_passes t = t.trivial_passes
let vacuous t = t.temporal_body && t.steps > 0 && t.activations = 0

let pp_failure ppf f =
  Format.fprintf ppf "%s: instance fired at %dns failed at %dns" f.property_name
    f.activation_time f.failure_time
