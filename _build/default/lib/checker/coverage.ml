open Tabv_psl

type summary = {
  properties : int;
  failing : int;
  vacuous : int;
  with_pending : int;
  total_failures : int;
  total_activations : int;
  total_evaluation_points : int;
}

let summarize monitors =
  List.fold_left
    (fun acc monitor ->
      let failures = List.length (Monitor.failures monitor) in
      {
        properties = acc.properties + 1;
        failing = (acc.failing + if failures > 0 then 1 else 0);
        vacuous = (acc.vacuous + if Monitor.vacuous monitor then 1 else 0);
        with_pending = (acc.with_pending + if Monitor.pending monitor > 0 then 1 else 0);
        total_failures = acc.total_failures + failures;
        total_activations = acc.total_activations + Monitor.activations monitor;
        total_evaluation_points = acc.total_evaluation_points + Monitor.steps monitor;
      })
    {
      properties = 0;
      failing = 0;
      vacuous = 0;
      with_pending = 0;
      total_failures = 0;
      total_activations = 0;
      total_evaluation_points = 0;
    }
    monitors

let clean summary =
  summary.failing = 0 && summary.vacuous = 0 && summary.with_pending = 0

let pp_summary ppf s =
  Format.fprintf ppf
    "%d properties: %d failing, %d vacuous, %d pending; %d failures, %d activations over %d evaluation points%s"
    s.properties s.failing s.vacuous s.with_pending s.total_failures
    s.total_activations s.total_evaluation_points
    (if clean s then " — clean" else "")

let pp_table ppf monitors =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun monitor ->
      let failures = List.length (Monitor.failures monitor) in
      Format.fprintf ppf "%-8s %-6s activations=%-6d failures=%-4d pending=%-3d%s@,"
        (Monitor.property monitor).Property.name
        (if failures > 0 then "FAIL" else "pass")
        (Monitor.activations monitor) failures (Monitor.pending monitor)
        (if Monitor.vacuous monitor then "  [vacuous]" else ""))
    monitors;
  pp_summary ppf (summarize monitors);
  Format.fprintf ppf "@]"
