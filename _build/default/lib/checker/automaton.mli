open Tabv_psl

(** Explicit-state checker synthesis: the FoCs-style alternative
    backend.

    The paper's methodology is {e independent of the checker
    generator} (Sec. IV): any tool that turns a PSL simple-subset
    property into an executable monitor can sit under the wrapper.
    This module provides a second generator beside {!Progression}:
    it tables the progression relation once, at synthesis time, into
    an explicit finite automaton —
    {ul
    {- states are the reachable residual formulas (hash-consed);}
    {- the alphabet is the set of valuations of the property's atomic
       propositions (at most [2^max_atoms]);}
    {- stepping a checker is then a single array lookup instead of a
       formula rewrite.}}

    Only {e untimed} formulas are supported (the RTL side of the
    flow): [next_eps^tau] waits depend on unbounded absolute times and
    cannot be tabled; at TLM the wrapper supplies that part around
    checkers generated here, exactly as it wraps FoCs output in the
    paper. *)

type t

(** A state handle (pure; stepping returns a new handle). *)
type state

exception Unsupported of string
(** Raised by {!compile} on formulas containing [next_eps^tau], more
    than [max_atoms] distinct atomic propositions, or a residual state
    space past the internal bound (pathological formulas). *)

val max_atoms : int

(** [compile formula] tables the checker for the whole formula.  The
    formula is normalised (boolean demotion + NNF) first.  Note that
    an [always]-wrapped property usually explodes here — the residual
    carries every subset of pending obligations; property monitors
    instead table the {e body} and spawn one instance per evaluation
    point (Sec. IV), which is what {!compile_body} supports.
    @raise Unsupported per above. *)
val compile : ?max_states:int -> Ltl.t -> t

(** [compile_body formula] strips one outer [always] (if present) and
    tables the body; returns the automaton and whether the property is
    repeating (had the outer [always], so a fresh instance starts at
    every evaluation point).
    @raise Unsupported per above. *)
val compile_body : ?max_states:int -> Ltl.t -> t * bool

(** Number of distinct automaton states (for reporting and tests). *)
val state_count : t -> int

val initial : t -> state

(** Consume one evaluation point. *)
val step : t -> state -> (string -> Expr.value option) -> state

(** Precompute the atom valuation of an evaluation point, so several
    instances of the same checker share the atom evaluations. *)
val valuation : t -> (string -> Expr.value option) -> int

(** Step with a precomputed valuation (one array lookup). *)
val step_valuation : t -> state -> int -> state

(** [Some true] accepted, [Some false] rejected, [None] still
    running. *)
val verdict : t -> state -> bool option
