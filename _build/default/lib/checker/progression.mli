open Tabv_psl

(** Checker synthesis by formula progression (rewriting).

    A property instance is an {e obligation}; consuming one evaluation
    point (a clock event at RTL, a transaction event at TLM) rewrites
    the obligation into a residual obligation using the standard
    progression rules:
    {v
      prog(p until q)   = prog(q) or (prog(p) and (p until q))
      prog(p release q) = prog(q) and (prog(p) or (p release q))
      prog(always p)    = prog(p) and always p
      prog(eventually p)= prog(p) or eventually p
      prog(next[1] p)   = p    (wait one more event)
    v}

    The paper's [next_eps^tau] operator progresses into a timed
    obligation [at target] with [target = now + eps] (Def. III.3):
    subsequent events leave it untouched while earlier than [target],
    evaluate the operand at exactly [target], and {e fail} it when an
    event arrives past [target] without one at [target] — exactly the
    wrapper behaviour of Sec. IV. *)

type t

exception Not_in_nnf of Ltl.t

(** Initial obligation of a formula.
    @raise Not_in_nnf on formulas outside negation normal form. *)
val of_formula : Ltl.t -> t

val is_true : t -> bool
val is_false : t -> bool

(** True when the obligation still contains a timed [at] node, i.e. a
    [next_eps^tau] wait. *)
val has_timed_wait : t -> bool

(** Earliest pending timed-evaluation instant, if any — the wrapper's
    "evaluation table" entry for this instance. *)
val next_evaluation_time : t -> int option

(** [step ~time lookup ob] consumes the evaluation point at [time]
    (signals sampled through [lookup]). *)
val step : time:int -> (string -> Expr.value option) -> t -> t

(** Obligation verdict at end of simulation: [Some true] iff resolved
    true, [Some false] iff resolved false, [None] when still pending
    (inconclusive). *)
val verdict : t -> bool option

val pp : Format.formatter -> t -> unit
