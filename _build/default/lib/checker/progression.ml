open Tabv_psl

type t =
  | True
  | False
  | Formula of Ltl.t  (* progressed at every evaluation point *)
  | At of int * Ltl.t  (* progress formula exactly at absolute time *)
  | And of t * t
  | Or of t * t

exception Not_in_nnf of Ltl.t

let ob_and a b =
  match a, b with
  | False, _ | _, False -> False
  | True, x | x, True -> x
  | _ -> if a = b then a else And (a, b)

let ob_or a b =
  match a, b with
  | True, _ | _, True -> True
  | False, x | x, False -> x
  | _ -> if a = b then a else Or (a, b)

let of_formula f =
  if not (Ltl.is_nnf f) then raise (Not_in_nnf f);
  Formula f

let rec is_true = function
  | True -> true
  | False | Formula _ | At _ -> false
  | And (a, b) -> is_true a && is_true b
  | Or (a, b) -> is_true a || is_true b

let rec is_false = function
  | False -> true
  | True | Formula _ | At _ -> false
  | And (a, b) -> is_false a || is_false b
  | Or (a, b) -> is_false a && is_false b

let rec has_timed_wait = function
  | At _ -> true
  | True | False | Formula _ -> false
  | And (a, b) | Or (a, b) -> has_timed_wait a || has_timed_wait b

let rec next_evaluation_time = function
  | At (target, _) -> Some target
  | True | False | Formula _ -> None
  | And (a, b) | Or (a, b) ->
    (match next_evaluation_time a, next_evaluation_time b with
     | None, t | t, None -> t
     | Some x, Some y -> Some (min x y))

(* Progress a formula at the evaluation point [time]. *)
let rec progress ~time lookup f =
  match f with
  | Ltl.Atom e -> if Expr.eval lookup e then True else False
  | Ltl.Not (Ltl.Atom e) -> if Expr.eval lookup e then False else True
  | Ltl.Not _ | Ltl.Implies _ -> raise (Not_in_nnf f)
  | Ltl.And (p, q) -> ob_and (progress ~time lookup p) (progress ~time lookup q)
  | Ltl.Or (p, q) -> ob_or (progress ~time lookup p) (progress ~time lookup q)
  | Ltl.Next_n (1, p) -> Formula p
  | Ltl.Next_n (n, p) -> Formula (Ltl.next_n (n - 1) p)
  | Ltl.Next_event (ne, p) -> At (time + ne.Ltl.eps, p)
  | Ltl.Until (p, q) ->
    ob_or (progress ~time lookup q)
      (ob_and (progress ~time lookup p) (Formula f))
  | Ltl.Release (p, q) ->
    ob_and (progress ~time lookup q)
      (ob_or (progress ~time lookup p) (Formula f))
  | Ltl.Always p -> ob_and (progress ~time lookup p) (Formula f)
  | Ltl.Eventually p -> ob_or (progress ~time lookup p) (Formula f)

let rec step ~time lookup ob =
  match ob with
  | True -> True
  | False -> False
  | Formula f -> progress ~time lookup f
  | At (target, f) ->
    if time < target then ob
    else if time = target then progress ~time lookup f
    else False  (* no observable event at the required instant *)
  | And (a, b) -> ob_and (step ~time lookup a) (step ~time lookup b)
  | Or (a, b) -> ob_or (step ~time lookup a) (step ~time lookup b)

let verdict ob =
  if is_true ob then Some true else if is_false ob then Some false else None

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "T"
  | False -> Format.pp_print_string ppf "F"
  | Formula f -> Format.fprintf ppf "{%a}" Ltl.pp f
  | At (target, f) -> Format.fprintf ppf "at[%dns]{%a}" target Ltl.pp f
  | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
