open Tabv_psl

exception Unsupported of string

let max_atoms = 10
let default_max_states = 1024

(* Residual formulas double as automaton states; [tt]/[ff] are the
   accepting/rejecting sinks. *)
let tt = Ltl.Atom (Expr.Bool true)
let ff = Ltl.Atom (Expr.Bool false)

let is_tt = function
  | Ltl.Atom (Expr.Bool true) -> true
  | _ -> false

let is_ff = function
  | Ltl.Atom (Expr.Bool false) -> true
  | _ -> false

let land_ a b =
  if is_ff a || is_ff b then ff
  else if is_tt a then b
  else if is_tt b then a
  else if Ltl.equal a b then a
  else Ltl.And (a, b)

let lor_ a b =
  if is_tt a || is_tt b then tt
  else if is_ff a then b
  else if is_ff b then a
  else if Ltl.equal a b then a
  else Ltl.Or (a, b)

(* One progression step with atoms decided by [eval_atom].  The
   residual language reuses the Ltl constructors, so reached residuals
   are directly comparable and hashable. *)
let rec prog eval_atom f =
  match f with
  | Ltl.Atom (Expr.Bool _) -> f
  | Ltl.Atom e -> if eval_atom e then tt else ff
  | Ltl.Not (Ltl.Atom (Expr.Bool b)) -> if b then ff else tt
  | Ltl.Not (Ltl.Atom e) -> if eval_atom e then ff else tt
  | Ltl.Not _ | Ltl.Implies _ ->
    raise (Unsupported "formula not in negation normal form")
  | Ltl.Next_event _ ->
    raise (Unsupported "next_eps^tau cannot be tabled (use the wrapper)")
  | Ltl.Next_n (1, p) -> p
  | Ltl.Next_n (n, p) -> Ltl.next_n (n - 1) p
  | Ltl.And (p, q) -> land_ (prog eval_atom p) (prog eval_atom q)
  | Ltl.Or (p, q) -> lor_ (prog eval_atom p) (prog eval_atom q)
  | Ltl.Until (p, q) -> lor_ (prog eval_atom q) (land_ (prog eval_atom p) f)
  | Ltl.Release (p, q) -> land_ (prog eval_atom q) (lor_ (prog eval_atom p) f)
  | Ltl.Always p -> land_ (prog eval_atom p) f
  | Ltl.Eventually p -> lor_ (prog eval_atom p) f

let rec collect_atoms acc = function
  | Ltl.Atom (Expr.Bool _) -> acc
  | Ltl.Atom e -> if List.exists (Expr.equal e) acc then acc else e :: acc
  | Ltl.Not p | Ltl.Next_n (_, p) | Ltl.Next_event (_, p) | Ltl.Always p
  | Ltl.Eventually p ->
    collect_atoms acc p
  | Ltl.And (p, q) | Ltl.Or (p, q) | Ltl.Implies (p, q) | Ltl.Until (p, q)
  | Ltl.Release (p, q) ->
    collect_atoms (collect_atoms acc p) q

type t = {
  atoms : Expr.t array;
  (* transitions.(state) has 2^k entries, one per atom valuation. *)
  transitions : int array array;
  verdicts : bool option array;
  initial : int;
}

type state = int

let compile ?(max_states = default_max_states) formula =
  let normalized = Nnf.convert (Ltl.demote_booleans formula) in
  let atoms = Array.of_list (List.rev (collect_atoms [] normalized)) in
  let k = Array.length atoms in
  if k > max_atoms then
    raise
      (Unsupported
         (Printf.sprintf "%d atomic propositions exceed the %d-atom limit" k max_atoms));
  let valuations = 1 lsl k in
  let ids : (Ltl.t, int) Hashtbl.t = Hashtbl.create 64 in
  let states : Ltl.t array ref = ref (Array.make 16 tt) in
  let count = ref 0 in
  let intern f =
    match Hashtbl.find_opt ids f with
    | Some id -> id
    | None ->
      if !count >= max_states then
        raise (Unsupported (Printf.sprintf "more than %d states" max_states));
      if !count >= Array.length !states then begin
        let grown = Array.make (2 * Array.length !states) tt in
        Array.blit !states 0 grown 0 !count;
        states := grown
      end;
      let id = !count in
      !states.(id) <- f;
      Hashtbl.add ids f id;
      incr count;
      id
  in
  let initial = intern normalized in
  let transitions = ref [] in
  (* BFS over reachable residuals. *)
  let processed = ref 0 in
  while !processed < !count do
    let id = !processed in
    let f = !states.(id) in
    let row = Array.make valuations 0 in
    for v = 0 to valuations - 1 do
      let eval_atom e =
        let rec index i = if Expr.equal atoms.(i) e then i else index (i + 1) in
        let i = index 0 in
        v land (1 lsl i) <> 0
      in
      row.(v) <- intern (prog eval_atom f)
    done;
    transitions := row :: !transitions;
    incr processed
  done;
  let transitions = Array.of_list (List.rev !transitions) in
  (* States interned after their row was built (impossible here since
     interning happens during row construction before [processed]
     catches up, and the loop runs until every interned state is
     processed) all have rows by termination of the while loop. *)
  let verdicts =
    Array.init !count (fun id ->
      let f = !states.(id) in
      if is_tt f then Some true else if is_ff f then Some false else None)
  in
  { atoms; transitions; verdicts; initial }

let compile_body ?max_states formula =
  match Nnf.convert (Ltl.demote_booleans formula) with
  | Ltl.Always body -> (compile ?max_states body, true)
  | other -> (compile ?max_states other, false)

let state_count t = Array.length t.transitions
let initial t = t.initial

let valuation t lookup =
  let v = ref 0 in
  Array.iteri
    (fun i atom -> if Expr.eval lookup atom then v := !v lor (1 lsl i))
    t.atoms;
  !v

let step_valuation t state v = t.transitions.(state).(v)
let step t state lookup = step_valuation t state (valuation t lookup)

let verdict t state = t.verdicts.(state)
