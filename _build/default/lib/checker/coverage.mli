(** Verification-run coverage summary across a set of property
    monitors: failures, vacuous passes, pending (inconclusive)
    obligations and activation density — the numbers a sign-off review
    looks at after a regression run. *)

type summary = {
  properties : int;
  failing : int;  (** properties with at least one failure *)
  vacuous : int;  (** evaluated but never non-trivially activated *)
  with_pending : int;  (** properties with obligations open at end *)
  total_failures : int;
  total_activations : int;
  total_evaluation_points : int;
}

val summarize : Monitor.t list -> summary

(** True when the run can be signed off: no failures, nothing vacuous,
    nothing left pending. *)
val clean : summary -> bool

val pp_summary : Format.formatter -> summary -> unit

(** One row per monitor followed by the summary line. *)
val pp_table : Format.formatter -> Monitor.t list -> unit
