type t = {
  name : string;
  formula : Ltl.t;
  context : Context.t;
}

let make ~name ?(context = Context.Clock Context.Base_clock) formula =
  { name; formula; context }

let equal a b =
  String.equal a.name b.name
  && Ltl.equal a.formula b.formula
  && Context.equal a.context b.context

let signals t =
  List.sort_uniq String.compare
    (Ltl.signals t.formula @ Context.signals t.context)

let unknown_signals ~known t =
  List.filter (fun s -> not (List.mem s known)) (signals t)

let is_rtl t =
  match t.context with
  | Context.Clock _ -> true
  | Context.Transaction _ -> false

let is_tlm t = not (is_rtl t)

let pp ppf t =
  Format.fprintf ppf "%s: %a %a" t.name Ltl.pp t.formula Context.pp t.context

let to_string t = Format.asprintf "%a" pp t
