(** A named property: a formula together with its evaluation context. *)

type t = {
  name : string;
  formula : Ltl.t;
  context : Context.t;
}

val make : name:string -> ?context:Context.t -> Ltl.t -> t
(** [make ~name f] defaults the context to the implicit clock context
    [true] ([Context.Clock Base_clock]). *)

val equal : t -> t -> bool

(** Sorted, duplicate-free signals of formula and context combined. *)
val signals : t -> string list

(** Signals the property mentions that are not in [known] — a lint for
    typos against a model's interface. *)
val unknown_signals : known:string list -> t -> string list

(** True iff the property carries an RTL clock context. *)
val is_rtl : t -> bool

(** True iff the property carries a TLM transaction context. *)
val is_tlm : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
