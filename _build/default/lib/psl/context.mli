(** Evaluation contexts of properties (the [@] operator of PSL).

    An RTL property carries a {e clock context} stating at which clock
    events it is evaluated; a TLM property carries a {e transaction
    context} stating at which transaction events it is evaluated
    (Def. III.2 of the paper). *)

(** Which clock events trigger evaluation. *)
type clock_edge =
  | Any_edge  (** [@clk]: every clock event *)
  | Posedge  (** [@clk_pos] *)
  | Negedge  (** [@clk_neg] *)

(** RTL clock context.  The paper's designs are synchronised "with
    respect to the rising and/or falling edge of one or more clocks";
    [Named_edge] selects a clock other than the default one. *)
type clock =
  | Base_clock  (** the implicit context [true] *)
  | Edge of clock_edge  (** the default clock *)
  | Edge_and of clock_edge * Expr.t
      (** [@(clk_edge && var_expr)]: evaluate at clock events where the
          boolean expression also holds *)
  | Named_edge of string * clock_edge  (** e.g. [@clkB_pos] *)
  | Named_edge_and of string * clock_edge * Expr.t

(** TLM transaction context. *)
type transaction =
  | Base_trans  (** [T_b]: the end of every transaction *)
  | Trans_and of Expr.t
      (** [T_b && var_expr] (second case of Def. III.2) *)

type t =
  | Clock of clock
  | Transaction of transaction

val equal : t -> t -> bool
val equal_clock : clock -> clock -> bool
val equal_transaction : transaction -> transaction -> bool

(** Signals mentioned by the gating expression of the context, [[]] for
    base contexts and plain edges. *)
val signals : t -> string list

(** Clock the context samples: [None] for the default clock, base
    contexts and transaction contexts. *)
val clock_name : t -> string option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
