lib/psl/ltl.pp.mli: Expr Format
