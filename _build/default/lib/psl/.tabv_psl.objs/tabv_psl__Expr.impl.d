lib/psl/expr.pp.ml: Format List Ppx_deriving_runtime Printf String
