lib/psl/semantics.pp.ml: Expr Format Ltl Ppx_deriving_runtime Trace
