lib/psl/lexer.pp.ml: Format List Printf String
