lib/psl/parser.pp.mli: Context Expr Ltl Property
