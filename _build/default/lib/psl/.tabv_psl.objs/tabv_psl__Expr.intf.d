lib/psl/expr.pp.mli: Format
