lib/psl/property.pp.ml: Context Format List Ltl String
