lib/psl/nnf.pp.mli: Ltl
