lib/psl/exhaustive.pp.ml: Expr Format List Semantics Trace
