lib/psl/context.pp.ml: Expr Format Ppx_deriving_runtime
