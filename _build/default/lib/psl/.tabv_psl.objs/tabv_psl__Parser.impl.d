lib/psl/parser.pp.ml: Array Context Expr Lexer List Ltl Printf Property String
