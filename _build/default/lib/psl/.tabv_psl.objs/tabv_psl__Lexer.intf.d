lib/psl/lexer.pp.mli: Format
