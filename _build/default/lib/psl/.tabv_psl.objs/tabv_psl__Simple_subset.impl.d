lib/psl/simple_subset.pp.ml: Format List Ltl
