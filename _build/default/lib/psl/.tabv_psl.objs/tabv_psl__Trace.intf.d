lib/psl/trace.pp.mli: Expr Format
