lib/psl/ltl.pp.ml: Expr Format List Ppx_deriving_runtime String
