lib/psl/simple_subset.pp.mli: Format Ltl
