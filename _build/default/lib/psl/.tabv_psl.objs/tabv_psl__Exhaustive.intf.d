lib/psl/exhaustive.pp.mli: Format Ltl Trace
