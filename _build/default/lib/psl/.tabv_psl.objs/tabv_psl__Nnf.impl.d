lib/psl/nnf.pp.ml: Expr Ltl
