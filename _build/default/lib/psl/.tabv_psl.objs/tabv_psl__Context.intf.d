lib/psl/context.pp.mli: Expr Format
