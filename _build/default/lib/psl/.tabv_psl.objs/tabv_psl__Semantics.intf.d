lib/psl/semantics.pp.mli: Format Ltl Trace
