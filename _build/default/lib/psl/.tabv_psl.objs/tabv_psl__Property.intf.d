lib/psl/property.pp.mli: Context Format Ltl
