lib/psl/trace.pp.ml: Array Expr Format List
