type value =
  | VBool of bool
  | VInt of int
[@@deriving eq]

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
[@@deriving eq, ord]

type arith =
  | Int of int
  | Avar of string
  | Add of arith * arith
  | Sub of arith * arith
  | Mul of arith * arith
[@@deriving eq, ord]

type t =
  | Bool of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * arith * arith
[@@deriving eq, ord]

exception Eval_error of string

let rec signals_arith_acc acc = function
  | Int _ -> acc
  | Avar v -> v :: acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) ->
    signals_arith_acc (signals_arith_acc acc a) b

let rec signals_acc acc = function
  | Bool _ -> acc
  | Var v -> v :: acc
  | Not e -> signals_acc acc e
  | And (a, b) | Or (a, b) -> signals_acc (signals_acc acc a) b
  | Cmp (_, a, b) -> signals_arith_acc (signals_arith_acc acc a) b

let signals e = List.sort_uniq String.compare (signals_acc [] e)
let signals_arith a = List.sort_uniq String.compare (signals_arith_acc [] a)

let mentions_any e names =
  List.exists (fun s -> List.mem s names) (signals e)

let eval_value lookup v =
  match lookup v with
  | Some value -> value
  | None -> raise (Eval_error (Printf.sprintf "unbound signal %S" v))

let rec eval_arith lookup = function
  | Int n -> n
  | Avar v ->
    (match eval_value lookup v with
     | VInt n -> n
     | VBool _ ->
       raise (Eval_error (Printf.sprintf "signal %S is boolean, expected integer" v)))
  | Add (a, b) -> eval_arith lookup a + eval_arith lookup b
  | Sub (a, b) -> eval_arith lookup a - eval_arith lookup b
  | Mul (a, b) -> eval_arith lookup a * eval_arith lookup b

let apply_cmp op a b =
  match op with
  | Eq -> a = b
  | Neq -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let rec eval lookup = function
  | Bool b -> b
  | Var v ->
    (match eval_value lookup v with
     | VBool b -> b
     | VInt n -> n <> 0)
  | Not e -> not (eval lookup e)
  | And (a, b) -> eval lookup a && eval lookup b
  | Or (a, b) -> eval lookup a || eval lookup b
  | Cmp (op, a, b) -> apply_cmp op (eval_arith lookup a) (eval_arith lookup b)

let rec simplify = function
  | (Bool _ | Var _) as e -> e
  | Not e ->
    (match simplify e with
     | Bool b -> Bool (not b)
     | Not inner -> inner
     | e' -> Not e')
  | And (a, b) ->
    (match simplify a, simplify b with
     | Bool false, _ | _, Bool false -> Bool false
     | Bool true, e | e, Bool true -> e
     | a', b' -> And (a', b'))
  | Or (a, b) ->
    (match simplify a, simplify b with
     | Bool true, _ | _, Bool true -> Bool true
     | Bool false, e | e, Bool false -> e
     | a', b' -> Or (a', b'))
  | Cmp (op, a, b) as e ->
    (match a, b with
     | Int x, Int y -> Bool (apply_cmp op x y)
     | _ -> e)

let pp_value ppf = function
  | VBool b -> Format.pp_print_bool ppf b
  | VInt n -> Format.pp_print_int ppf n

let cmp_symbol = function
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Arithmetic precedence: Add/Sub = 1, Mul = 2, primary = 3. *)
let rec pp_arith_prec prec ppf a =
  let paren p body =
    if p < prec then Format.fprintf ppf "(%t)" body else body ppf
  in
  match a with
  | Int n ->
    if n < 0 then Format.fprintf ppf "(%d)" n else Format.pp_print_int ppf n
  | Avar v -> Format.pp_print_string ppf v
  | Add (x, y) ->
    paren 1 (fun ppf ->
      Format.fprintf ppf "%a + %a" (pp_arith_prec 1) x (pp_arith_prec 2) y)
  | Sub (x, y) ->
    paren 1 (fun ppf ->
      Format.fprintf ppf "%a - %a" (pp_arith_prec 1) x (pp_arith_prec 2) y)
  | Mul (x, y) ->
    paren 2 (fun ppf ->
      Format.fprintf ppf "%a * %a" (pp_arith_prec 2) x (pp_arith_prec 3) y)

let pp_arith ppf a = pp_arith_prec 0 ppf a

(* Boolean precedence: Or = 1, And = 2, Not = 3, Cmp/primary = 4. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if p < prec then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Bool b -> Format.pp_print_bool ppf b
  | Var v -> Format.pp_print_string ppf v
  | Not inner ->
    paren 3 (fun ppf -> Format.fprintf ppf "!%a" (pp_prec 3) inner)
  | And (a, b) ->
    paren 2 (fun ppf ->
      Format.fprintf ppf "%a && %a" (pp_prec 2) a (pp_prec 3) b)
  | Or (a, b) ->
    paren 1 (fun ppf ->
      Format.fprintf ppf "%a || %a" (pp_prec 1) a (pp_prec 2) b)
  | Cmp (op, a, b) ->
    paren 4 (fun ppf ->
      Format.fprintf ppf "%a %s %a" pp_arith a (cmp_symbol op) pp_arith b)

let pp ppf e = pp_prec 0 ppf e
let to_string e = Format.asprintf "%a" pp e
