(** Finite timed traces: the evaluation points of a property.

    For an RTL property the entries are clock events (e.g. every
    positive edge); for a TLM property they are transaction events.
    Each entry samples every observable signal at that instant.
    Entries are strictly increasing in time. *)

type entry = {
  time : int;  (** nanoseconds *)
  env : (string * Expr.value) list;
}

type t

exception Non_monotonic of {
  index : int;
  time : int;
}

(** @raise Non_monotonic if times are not strictly increasing. *)
val of_list : entry list -> t

val length : t -> int
val get : t -> int -> entry
val time_at : t -> int -> int

(** Value lookup inside one entry. *)
val lookup : entry -> string -> Expr.value option

(** [index_at_time t ~from ~time] is the index [j >= from] whose entry
    has exactly [time], if any. *)
val index_at_time : t -> from:int -> time:int -> int option

(** [first_index_after t ~from ~time] is the first index [j >= from]
    whose entry time is strictly greater than [time], if any. *)
val first_index_after : t -> from:int -> time:int -> int option

(** [cycle_trace ~period entries] builds a clock-event trace with entry
    [i] at time [i * period + offset] (default offset 0). *)
val cycle_trace : ?offset:int -> period:int -> (string * Expr.value) list list -> t

(** Keep only entries satisfying a predicate (used to apply gated
    contexts of the form [edge && var_expr]). *)
val filter : (entry -> bool) -> t -> t

(** Entries as a list, in order. *)
val to_list : t -> entry list

val pp : Format.formatter -> t -> unit
