exception Parse_error of {
  line : int;
  col : int;
  message : string;
}

type state = {
  tokens : Lexer.located array;
  mutable pos : int;
  mutable constants : (string * int) list;  (* from 'const NAME = INT;' *)
}

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let error_at (located : Lexer.located) message =
  raise (Parse_error { line = located.line; col = located.col; message })

let fail st message = error_at (peek st) message

let expect st token =
  let located = peek st in
  if located.token = token then advance st
  else
    fail st
      (Printf.sprintf "expected %s, found %s"
         (Lexer.token_to_string token)
         (Lexer.token_to_string located.token))

let expect_int st =
  match (peek st).token with
  | Lexer.INT n ->
    advance st;
    n
  | Lexer.IDENT name when List.mem_assoc name st.constants ->
    advance st;
    List.assoc name st.constants
  | other -> fail st (Printf.sprintf "expected integer, found %s" (Lexer.token_to_string other))

let expect_ident st =
  match (peek st).token with
  | Lexer.IDENT s ->
    advance st;
    s
  | other ->
    fail st (Printf.sprintf "expected identifier, found %s" (Lexer.token_to_string other))

(* --- Arithmetic layer --- *)

let rec parse_arith st =
  let rec loop acc =
    match (peek st).token with
    | Lexer.PLUS ->
      advance st;
      loop (Expr.Add (acc, parse_term st))
    | Lexer.MINUS ->
      advance st;
      loop (Expr.Sub (acc, parse_term st))
    | _ -> acc
  in
  loop (parse_term st)

and parse_term st =
  let rec loop acc =
    match (peek st).token with
    | Lexer.STAR ->
      advance st;
      loop (Expr.Mul (acc, parse_factor st))
    | _ -> acc
  in
  loop (parse_factor st)

and parse_factor st =
  match (peek st).token with
  | Lexer.INT n ->
    advance st;
    Expr.Int n
  | Lexer.MINUS ->
    advance st;
    (match parse_factor st with
     | Expr.Int n -> Expr.Int (-n)
     | a -> Expr.Sub (Expr.Int 0, a))
  | Lexer.IDENT v ->
    advance st;
    if List.mem_assoc v st.constants then Expr.Int (List.assoc v st.constants)
    else Expr.Avar v
  | Lexer.LPAREN ->
    advance st;
    let a = parse_arith st in
    expect st Lexer.RPAREN;
    a
  | other ->
    fail st
      (Printf.sprintf "expected arithmetic operand, found %s" (Lexer.token_to_string other))

let is_cmp_op = function
  | Lexer.EQ | Lexer.NEQ | Lexer.LT | Lexer.LE | Lexer.GT | Lexer.GE -> true
  | _ -> false

let cmp_of_token = function
  | Lexer.EQ -> Expr.Eq
  | Lexer.NEQ -> Expr.Neq
  | Lexer.LT -> Expr.Lt
  | Lexer.LE -> Expr.Le
  | Lexer.GT -> Expr.Gt
  | Lexer.GE -> Expr.Ge
  | _ -> invalid_arg "cmp_of_token"

(* --- LTL layer --- *)

(* Bounded SEREs, desugared to plain LTL during parsing:
   {r1; r2} |-> f  expands to  r1 -> next(r2 -> f)  and so on, with
   alternation becoming conjunction of expansions and bounded
   repetition unrolled.  Only bounded repetitions with a lower bound
   of at least 1 are supported (no empty match, no unbounded star). *)
type sere =
  | S_bool of Ltl.t  (* a boolean formula, one cycle *)
  | S_seq of sere * sere
  | S_alt of sere * sere

let rec sere_concat_n r n = if n = 1 then r else S_seq (r, sere_concat_n r (n - 1))

(* [expand r continuation]: the obligation that [r] matches starting
   at the current cycle and [continuation] holds at the cycle of [r]'s
   last element (overlapping semantics). *)
let rec expand_sere r continuation =
  match r with
  | S_bool b -> Ltl.Implies (b, continuation)
  | S_seq (r1, r2) -> expand_sere r1 (Ltl.Next_n (1, expand_sere r2 continuation))
  | S_alt (r1, r2) ->
    Ltl.And (expand_sere r1 continuation, expand_sere r2 continuation)

let rec parse_formula st =
  match (peek st).token with
  | Lexer.LBRACE ->
    advance st;
    let r = parse_sere st in
    expect st Lexer.RBRACE;
    let non_overlapping =
      match (peek st).token with
      | Lexer.SUFFIX_IMPL -> false
      | Lexer.SUFFIX_IMPL_NEXT -> true
      | other ->
        fail st
          (Printf.sprintf "expected '|->' or '|=>' after SERE, found %s"
             (Lexer.token_to_string other))
    in
    advance st;
    let consequent = parse_formula st in
    let consequent =
      if non_overlapping then Ltl.Next_n (1, consequent) else consequent
    in
    expand_sere r consequent
  | _ ->
    let lhs = parse_untilrel st in
    (match (peek st).token with
     | Lexer.ARROW ->
       advance st;
       Ltl.Implies (lhs, parse_formula st)
     | _ -> lhs)

and parse_sere st =
  (* alternation (lowest) > concatenation > repetition > atom *)
  let lhs = parse_sere_concat st in
  match (peek st).token with
  | Lexer.PIPE ->
    advance st;
    S_alt (lhs, parse_sere st)
  | _ -> lhs

and parse_sere_concat st =
  let lhs = parse_sere_repeat st in
  match (peek st).token with
  | Lexer.SEMI ->
    advance st;
    S_seq (lhs, parse_sere_concat st)
  | _ -> lhs

and parse_sere_repeat st =
  let atom = parse_sere_atom st in
  match (peek st).token with
  | Lexer.LBRACKET ->
    advance st;
    expect st Lexer.STAR;
    let low = expect_int st in
    let high =
      match (peek st).token with
      | Lexer.DOTDOT ->
        advance st;
        expect_int st
      | _ -> low
    in
    expect st Lexer.RBRACKET;
    if low < 1 || high < low then
      fail st "SERE repetition requires 1 <= i <= j (no empty match)";
    let repeats =
      List.init (high - low + 1) (fun k -> sere_concat_n atom (low + k))
    in
    (match repeats with
     | [] -> assert false
     | first :: rest -> List.fold_left (fun acc r -> S_alt (acc, r)) first rest)
  | _ -> atom

and parse_sere_atom st =
  match (peek st).token with
  | Lexer.LBRACE ->
    advance st;
    let r = parse_sere st in
    expect st Lexer.RBRACE;
    r
  | _ ->
    (* A boolean formula: reuse the boolean layers of the grammar. *)
    let located = peek st in
    let f = parse_or st in
    let rec boolean = function
      | Ltl.Atom _ -> true
      | Ltl.Not g -> boolean g
      | Ltl.And (g, h) | Ltl.Or (g, h) | Ltl.Implies (g, h) -> boolean g && boolean h
      | Ltl.Next_n _ | Ltl.Next_event _ | Ltl.Until _ | Ltl.Release _
      | Ltl.Always _ | Ltl.Eventually _ ->
        false
    in
    if boolean f then S_bool f
    else error_at located "SERE elements must be boolean expressions"

and parse_untilrel st =
  let lhs = parse_or st in
  match (peek st).token with
  | Lexer.KW_UNTIL ->
    let kw = peek st in
    advance st;
    (* PSL spells the strong form 'until!'; both spellings map to the
       strong until of Def. II.1 (the paper writes plain 'until').
       The bang must be adjacent, or it negates the right operand. *)
    (let next = peek st in
     if next.Lexer.token = Lexer.BANG && next.Lexer.line = kw.Lexer.line
        && next.Lexer.col = kw.Lexer.col + 5
     then advance st);
    Ltl.Until (lhs, parse_untilrel st)
  | Lexer.KW_WEAK_UNTIL ->
    (* p weak_until q  ==  q release (p || q): p holds up to (and not
       necessarily reaching) a q, or forever. *)
    advance st;
    let rhs = parse_untilrel st in
    Ltl.Release (rhs, Ltl.Or (lhs, rhs))
  | Lexer.KW_RELEASE ->
    advance st;
    Ltl.Release (lhs, parse_untilrel st)
  | Lexer.KW_BEFORE ->
    (* a before b  ==  !b until (a && !b): a strictly precedes b
       (strong: a must eventually occur). *)
    advance st;
    let rhs = parse_untilrel st in
    Ltl.Until (Ltl.Not rhs, Ltl.And (lhs, Ltl.Not rhs))
  | _ -> lhs

and parse_or st =
  let rec loop acc =
    match (peek st).token with
    | Lexer.OR_OR ->
      advance st;
      loop (Ltl.Or (acc, parse_and st))
    | _ -> acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    match (peek st).token with
    | Lexer.AND_AND ->
      advance st;
      loop (Ltl.And (acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match (peek st).token with
  | Lexer.BANG ->
    advance st;
    Ltl.Not (parse_unary st)
  | Lexer.KW_ALWAYS ->
    advance st;
    Ltl.Always (parse_unary st)
  | Lexer.KW_EVENTUALLY ->
    let kw = peek st in
    advance st;
    (* Accept PSL's 'eventually!' spelling (adjacent bang only). *)
    (let next = peek st in
     if next.Lexer.token = Lexer.BANG && next.Lexer.line = kw.Lexer.line
        && next.Lexer.col = kw.Lexer.col + 10
     then advance st);
    Ltl.Eventually (parse_unary st)
  | Lexer.KW_NEVER ->
    advance st;
    Ltl.Always (Ltl.Not (parse_unary st))
  | Lexer.KW_NEXT ->
    advance st;
    let n =
      match (peek st).token with
      | Lexer.LBRACKET ->
        advance st;
        let n = expect_int st in
        expect st Lexer.RBRACKET;
        if n < 1 then fail st "next[n] requires n >= 1";
        n
      | _ -> 1
    in
    Ltl.Next_n (n, parse_unary st)
  | Lexer.KW_NEXT_A | Lexer.KW_NEXT_E ->
    let conjunctive = (peek st).token = Lexer.KW_NEXT_A in
    advance st;
    expect st Lexer.LBRACKET;
    let low = expect_int st in
    expect st Lexer.DOTDOT;
    let high = expect_int st in
    expect st Lexer.RBRACKET;
    if low < 1 || high < low then
      fail st "next_a/next_e require 1 <= i <= j";
    let operand = parse_unary st in
    let terms = List.init (high - low + 1) (fun k -> Ltl.next_n (low + k) operand) in
    (match terms with
     | [] -> assert false
     | first :: rest ->
       List.fold_left
         (fun acc term ->
           if conjunctive then Ltl.And (acc, term) else Ltl.Or (acc, term))
         first rest)
  | Lexer.KW_NEXTE ->
    advance st;
    expect st Lexer.LBRACKET;
    let tau = expect_int st in
    expect st Lexer.COMMA;
    let eps = expect_int st in
    expect st Lexer.RBRACKET;
    Ltl.Next_event ({ tau; eps }, parse_unary st)
  | _ -> parse_compare st

and parse_compare st =
  (* Try [arith cmpop arith]; if no comparison operator follows the
     tentative left-hand side, backtrack to a boolean primary. *)
  let saved = st.pos in
  let lhs_arith =
    try Some (parse_arith st) with
    | Parse_error _ -> None
  in
  match lhs_arith with
  | Some lhs when is_cmp_op (peek st).token ->
    let op = cmp_of_token (peek st).token in
    advance st;
    let rhs = parse_arith st in
    Ltl.Atom (Expr.Cmp (op, lhs, rhs))
  | _ ->
    st.pos <- saved;
    parse_bool_primary st

and parse_bool_primary st =
  match (peek st).token with
  | Lexer.TRUE ->
    advance st;
    Ltl.tt
  | Lexer.FALSE ->
    advance st;
    Ltl.ff
  | Lexer.IDENT v ->
    advance st;
    Ltl.Atom (Expr.Var v)
  | Lexer.LPAREN ->
    advance st;
    let f = parse_formula st in
    expect st Lexer.RPAREN;
    f
  | other ->
    fail st (Printf.sprintf "expected formula, found %s" (Lexer.token_to_string other))

(* --- Boolean expressions (contexts) --- *)

(* A parsed pure-boolean formula, demoted to the expression layer. *)
let rec to_expr (located : Lexer.located) = function
  | Ltl.Atom e -> e
  | Ltl.Not f -> Expr.Not (to_expr located f)
  | Ltl.And (a, b) -> Expr.And (to_expr located a, to_expr located b)
  | Ltl.Or (a, b) -> Expr.Or (to_expr located a, to_expr located b)
  | Ltl.Implies _ | Ltl.Next_n _ | Ltl.Next_event _ | Ltl.Until _ | Ltl.Release _
  | Ltl.Always _ | Ltl.Eventually _ ->
    error_at located "temporal operators are not allowed in this position"

let parse_bool_expr st =
  let located = peek st in
  let f = parse_formula st in
  to_expr located f

(* --- Contexts --- *)

let edge_of_name = function
  | "clk" -> Some Context.Any_edge
  | "clk_pos" -> Some Context.Posedge
  | "clk_neg" -> Some Context.Negedge
  | _ -> None

(* [@NAME], [@NAME_pos], [@NAME_neg] for non-default clocks. *)
let named_clock_of_ident name =
  let strip suffix =
    let nl = String.length name and sl = String.length suffix in
    if nl > sl && String.sub name (nl - sl) sl = suffix then
      Some (String.sub name 0 (nl - sl))
    else None
  in
  match strip "_pos" with
  | Some clock -> Some (clock, Context.Posedge)
  | None ->
    (match strip "_neg" with
     | Some clock -> Some (clock, Context.Negedge)
     | None -> Some (name, Context.Any_edge))

let parse_context st =
  expect st Lexer.AT;
  match (peek st).token with
  | Lexer.TRUE ->
    advance st;
    Context.Clock Context.Base_clock
  | Lexer.IDENT "tb" ->
    advance st;
    Context.Transaction Context.Base_trans
  | Lexer.IDENT name ->
    (match edge_of_name name with
     | Some edge ->
       advance st;
       Context.Clock (Context.Edge edge)
     | None ->
       (match named_clock_of_ident name with
        | Some (clock, edge) ->
          advance st;
          Context.Clock (Context.Named_edge (clock, edge))
        | None -> fail st (Printf.sprintf "unknown context %S" name)))
  | Lexer.LPAREN ->
    advance st;
    let head = expect_ident st in
    expect st Lexer.AND_AND;
    let gate = parse_bool_expr st in
    expect st Lexer.RPAREN;
    (match head, edge_of_name head with
     | "tb", _ -> Context.Transaction (Context.Trans_and gate)
     | _, Some edge -> Context.Clock (Context.Edge_and (edge, gate))
     | _, None ->
       (match named_clock_of_ident head with
        | Some (clock, edge) ->
          Context.Clock (Context.Named_edge_and (clock, edge, gate))
        | None -> fail st (Printf.sprintf "unknown context %S" head)))
  | other ->
    fail st (Printf.sprintf "expected context, found %s" (Lexer.token_to_string other))

let parse_formula_with_context st =
  let f = parse_formula st in
  let context =
    match (peek st).token with
    | Lexer.AT -> parse_context st
    | _ -> Context.Clock Context.Base_clock
  in
  (f, context)

(* --- Entry points --- *)

let make_state source =
  { tokens = Array.of_list (Lexer.tokenize source); pos = 0; constants = [] }

let with_state source k =
  let st =
    try make_state source with
    | Lexer.Lex_error { line; col; message } -> raise (Parse_error { line; col; message })
  in
  let result = k st in
  expect st Lexer.EOF;
  result

let formula source = with_state source parse_formula_with_context

let formula_only source = with_state source parse_formula

let expr source = with_state source parse_bool_expr

let property_exn ~name source =
  let f, context = formula source in
  Property.make ~name ~context f

let file source =
  with_state source (fun st ->
    let rec items acc =
      match (peek st).token with
      | Lexer.EOF -> List.rev acc
      | Lexer.KW_CONST ->
        advance st;
        let name = expect_ident st in
        expect st Lexer.EQ;
        let value =
          let negative = (peek st).token = Lexer.MINUS in
          if negative then advance st;
          let n = expect_int st in
          if negative then -n else n
        in
        expect st Lexer.SEMI;
        st.constants <- (name, value) :: st.constants;
        items acc
      | Lexer.KW_PROPERTY ->
        advance st;
        let name = expect_ident st in
        expect st Lexer.EQ;
        let f, context = parse_formula_with_context st in
        expect st Lexer.SEMI;
        items (Property.make ~name ~context f :: acc)
      | other ->
        fail st (Printf.sprintf "expected 'property', found %s" (Lexer.token_to_string other))
    in
    items [])
