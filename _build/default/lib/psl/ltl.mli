(** LTL / PSL-simple-subset property formulas.

    The abstract syntax follows Def. II.1 of the paper extended with the
    derived operators [always]/[eventually], bounded repetition
    [next\[n\]], and the paper's new TLM operator [next_eps^tau]
    (Def. III.3).  [next p] is represented as [Next_n (1, p)]. *)

(** Annotation of the paper's [next_eps^tau] operator: [tau] is the
    ordinal position of the operator among all such operators in the
    property (used by checker generation), [eps] the required absolute
    evaluation offset in nanoseconds from the instant at which the
    subformula starts evaluation. *)
type next_event = {
  tau : int;
  eps : int;
}

type t =
  | Atom of Expr.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next_n of int * t  (** [next\[n\] p], [n >= 1] *)
  | Next_event of next_event * t  (** [next_eps^tau p] *)
  | Until of t * t
  | Release of t * t
  | Always of t
  | Eventually of t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Smart constructor collapsing nested next chains:
    [next_n n (Next_n (m, p)) = Next_n (n + m, p)]; [next_n 0 p = p]. *)
val next_n : int -> t -> t

val atom : Expr.t -> t
val tt : t
val ff : t

(** Number of AST nodes (atoms count their expression as one node). *)
val size : t -> int

(** Sorted, duplicate-free signal names mentioned in the formula. *)
val signals : t -> string list

(** Maximum [next]/[next\[n\]] nesting depth from the root, i.e. the
    number of clock cycles of look-ahead the formula requires.
    [Next_event] contributes [1] (one evaluation event). *)
val next_depth : t -> int

(** Largest [eps] of any [Next_event] in the formula, 0 if none. *)
val max_eps : t -> int

(** All [next_event] annotations, in left-to-right traversal order. *)
val next_events : t -> next_event list

(** [map_atoms f t] rebuilds [t] with every atom [e] replaced by
    [f e]. *)
val map_atoms : (Expr.t -> Expr.t) -> t -> t

(** True iff the formula contains no [Implies] and every [Not] is
    applied directly to an atom (negation normal form, Def. II.1). *)
val is_nnf : t -> bool

(** True iff every [Next_n] is applied to an atom or negated atom
    (postcondition of the push-ahead procedure, Sec. III-A). *)
val is_pushed : t -> bool

(** Constant folding at the LTL level (uses {!Expr.simplify} on
    atoms). *)
val simplify : t -> t

(** Collapse maximal pure-boolean subtrees into single atoms, mirroring
    PSL's boolean layer: [And (Atom a, Atom b)] becomes
    [Atom (Expr.And (a, b))], and a pure-boolean implication becomes
    [Atom (Expr.Or (Expr.Not a, b))].  Methodology III.1 runs this
    before NNF so that expressions like [ds && indata == 0] are treated
    as one atomic proposition (as in Fig. 3 of the paper). *)
val demote_booleans : t -> t

(** Precedence-aware printer; output is re-parseable by {!Parser}.
    [next_eps^tau] is printed as [nexte[tau,eps]]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
