type next_event = {
  tau : int;
  eps : int;
}
[@@deriving eq, ord]

type t =
  | Atom of Expr.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next_n of int * t
  | Next_event of next_event * t
  | Until of t * t
  | Release of t * t
  | Always of t
  | Eventually of t
[@@deriving eq, ord]

let atom e = Atom e
let tt = Atom (Expr.Bool true)
let ff = Atom (Expr.Bool false)

let next_n n p =
  if n < 0 then invalid_arg "Ltl.next_n: negative count"
  else if n = 0 then p
  else
    match p with
    | Next_n (m, inner) -> Next_n (n + m, inner)
    | _ -> Next_n (n, p)

let rec size = function
  | Atom _ -> 1
  | Not p | Next_n (_, p) | Next_event (_, p) | Always p | Eventually p ->
    1 + size p
  | And (p, q) | Or (p, q) | Implies (p, q) | Until (p, q) | Release (p, q) ->
    1 + size p + size q

let rec signals_acc acc = function
  | Atom e -> List.rev_append (Expr.signals e) acc
  | Not p | Next_n (_, p) | Next_event (_, p) | Always p | Eventually p ->
    signals_acc acc p
  | And (p, q) | Or (p, q) | Implies (p, q) | Until (p, q) | Release (p, q) ->
    signals_acc (signals_acc acc p) q

let signals t = List.sort_uniq String.compare (signals_acc [] t)

let rec next_depth = function
  | Atom _ -> 0
  | Not p | Always p | Eventually p -> next_depth p
  | And (p, q) | Or (p, q) | Implies (p, q) | Until (p, q) | Release (p, q) ->
    max (next_depth p) (next_depth q)
  | Next_n (n, p) -> n + next_depth p
  | Next_event (_, p) -> 1 + next_depth p

let rec max_eps = function
  | Atom _ -> 0
  | Not p | Next_n (_, p) | Always p | Eventually p -> max_eps p
  | Next_event (ne, p) -> max ne.eps (max_eps p)
  | And (p, q) | Or (p, q) | Implies (p, q) | Until (p, q) | Release (p, q) ->
    max (max_eps p) (max_eps q)

let next_events t =
  let rec go acc = function
    | Atom _ -> acc
    | Not p | Next_n (_, p) | Always p | Eventually p -> go acc p
    | Next_event (ne, p) -> go (ne :: acc) p
    | And (p, q) | Or (p, q) | Implies (p, q) | Until (p, q) | Release (p, q) ->
      go (go acc p) q
  in
  List.rev (go [] t)

let rec map_atoms f = function
  | Atom e -> Atom (f e)
  | Not p -> Not (map_atoms f p)
  | And (p, q) -> And (map_atoms f p, map_atoms f q)
  | Or (p, q) -> Or (map_atoms f p, map_atoms f q)
  | Implies (p, q) -> Implies (map_atoms f p, map_atoms f q)
  | Next_n (n, p) -> Next_n (n, map_atoms f p)
  | Next_event (ne, p) -> Next_event (ne, map_atoms f p)
  | Until (p, q) -> Until (map_atoms f p, map_atoms f q)
  | Release (p, q) -> Release (map_atoms f p, map_atoms f q)
  | Always p -> Always (map_atoms f p)
  | Eventually p -> Eventually (map_atoms f p)

let rec is_nnf = function
  | Atom _ -> true
  | Not (Atom _) -> true
  | Not _ | Implies _ -> false
  | Next_n (_, p) | Next_event (_, p) | Always p | Eventually p -> is_nnf p
  | And (p, q) | Or (p, q) | Until (p, q) | Release (p, q) ->
    is_nnf p && is_nnf q

let rec is_pushed = function
  | Atom _ | Not (Atom _) -> true
  | Not p -> is_pushed p
  | Next_n (_, (Atom _ | Not (Atom _))) -> true
  | Next_n (_, _) -> false
  | Next_event (_, (Atom _ | Not (Atom _))) -> true
  | Next_event (_, _) -> false
  | Always p | Eventually p -> is_pushed p
  | And (p, q) | Or (p, q) | Implies (p, q) | Until (p, q) | Release (p, q) ->
    is_pushed p && is_pushed q

let rec simplify t =
  match t with
  | Atom e -> Atom (Expr.simplify e)
  | Not p ->
    (match simplify p with
     | Atom (Expr.Bool b) -> Atom (Expr.Bool (not b))
     | p' -> Not p')
  | And (p, q) ->
    (match simplify p, simplify q with
     | Atom (Expr.Bool false), _ | _, Atom (Expr.Bool false) -> ff
     | Atom (Expr.Bool true), r | r, Atom (Expr.Bool true) -> r
     | p', q' -> And (p', q'))
  | Or (p, q) ->
    (match simplify p, simplify q with
     | Atom (Expr.Bool true), _ | _, Atom (Expr.Bool true) -> tt
     | Atom (Expr.Bool false), r | r, Atom (Expr.Bool false) -> r
     | p', q' -> Or (p', q'))
  | Implies (p, q) ->
    (match simplify p, simplify q with
     | Atom (Expr.Bool false), _ -> tt
     | Atom (Expr.Bool true), r -> r
     | _, Atom (Expr.Bool true) -> tt
     | p', q' -> Implies (p', q'))
  | Next_n (n, p) ->
    (match simplify p with
     | Atom (Expr.Bool b) -> Atom (Expr.Bool b)
     | p' -> next_n n p')
  | Next_event (ne, p) -> Next_event (ne, simplify p)
  | Until (p, q) ->
    (match simplify p, simplify q with
     | _, Atom (Expr.Bool true) -> tt
     | _, (Atom (Expr.Bool false) as f) -> f
     | p', q' -> Until (p', q'))
  | Release (p, q) ->
    (match simplify p, simplify q with
     | _, (Atom (Expr.Bool true) as t') -> t'
     | p', q' -> Release (p', q'))
  | Always p ->
    (match simplify p with
     | Atom (Expr.Bool b) -> Atom (Expr.Bool b)
     | p' -> Always p')
  | Eventually p ->
    (match simplify p with
     | Atom (Expr.Bool b) -> Atom (Expr.Bool b)
     | p' -> Eventually p')

let rec demote_booleans t =
  match t with
  | Atom _ -> t
  | Not p ->
    (match demote_booleans p with
     | Atom e -> Atom (Expr.Not e)
     | p' -> Not p')
  | And (p, q) ->
    (match demote_booleans p, demote_booleans q with
     | Atom a, Atom b -> Atom (Expr.And (a, b))
     | p', q' -> And (p', q'))
  | Or (p, q) ->
    (match demote_booleans p, demote_booleans q with
     | Atom a, Atom b -> Atom (Expr.Or (a, b))
     | p', q' -> Or (p', q'))
  | Implies (p, q) ->
    (match demote_booleans p, demote_booleans q with
     | Atom a, Atom b -> Atom (Expr.Or (Expr.Not a, b))
     | p', q' -> Implies (p', q'))
  | Next_n (n, p) -> Next_n (n, demote_booleans p)
  | Next_event (ne, p) -> Next_event (ne, demote_booleans p)
  | Until (p, q) -> Until (demote_booleans p, demote_booleans q)
  | Release (p, q) -> Release (demote_booleans p, demote_booleans q)
  | Always p -> Always (demote_booleans p)
  | Eventually p -> Eventually (demote_booleans p)

(* Printing precedence:
   Implies = 1 (right assoc), Until/Release = 2 (right assoc),
   Or = 3, And = 4, unary (Not, Next*, Always, Eventually) = 5,
   primary = 6. *)
let rec pp_prec prec ppf t =
  let paren p body =
    if p < prec then Format.fprintf ppf "(%t)" body else body ppf
  in
  match t with
  | Atom e ->
    (* Parenthesize boolean-connective atoms so they re-parse at the
       right precedence relative to the LTL operators around them. *)
    (match e with
     | Expr.And _ | Expr.Or _ -> Format.fprintf ppf "(%a)" Expr.pp e
     | Expr.Bool _ | Expr.Var _ | Expr.Not _ | Expr.Cmp _ -> Expr.pp ppf e)
  | Not p -> paren 5 (fun ppf -> Format.fprintf ppf "!%a" (pp_prec 6) p)
  | And (p, q) ->
    paren 4 (fun ppf ->
      Format.fprintf ppf "%a && %a" (pp_prec 4) p (pp_prec 5) q)
  | Or (p, q) ->
    paren 3 (fun ppf ->
      Format.fprintf ppf "%a || %a" (pp_prec 3) p (pp_prec 4) q)
  | Implies (p, q) ->
    paren 1 (fun ppf ->
      Format.fprintf ppf "%a -> %a" (pp_prec 2) p (pp_prec 1) q)
  | Next_n (1, p) ->
    paren 5 (fun ppf -> Format.fprintf ppf "next(%a)" (pp_prec 0) p)
  | Next_n (n, p) ->
    paren 5 (fun ppf -> Format.fprintf ppf "next[%d](%a)" n (pp_prec 0) p)
  | Next_event (ne, p) ->
    paren 5 (fun ppf ->
      Format.fprintf ppf "nexte[%d,%d](%a)" ne.tau ne.eps (pp_prec 0) p)
  | Until (p, q) ->
    paren 2 (fun ppf ->
      Format.fprintf ppf "%a until %a" (pp_prec 3) p (pp_prec 2) q)
  | Release (p, q) ->
    paren 2 (fun ppf ->
      Format.fprintf ppf "%a release %a" (pp_prec 3) p (pp_prec 2) q)
  | Always p ->
    paren 5 (fun ppf -> Format.fprintf ppf "always(%a)" (pp_prec 0) p)
  | Eventually p ->
    paren 5 (fun ppf -> Format.fprintf ppf "eventually(%a)" (pp_prec 0) p)

let pp ppf t = pp_prec 0 ppf t
let to_string t = Format.asprintf "%a" pp t
