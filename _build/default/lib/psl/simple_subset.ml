type violation = {
  path : string;
  message : string;
}

let rec is_boolean = function
  | Ltl.Atom _ -> true
  | Ltl.Not p -> is_boolean p
  | Ltl.And (p, q) | Ltl.Or (p, q) | Ltl.Implies (p, q) ->
    is_boolean p && is_boolean q
  | Ltl.Next_n _ | Ltl.Next_event _ | Ltl.Until _ | Ltl.Release _
  | Ltl.Always _ | Ltl.Eventually _ ->
    false

let check t =
  let violations = ref [] in
  let report path message = violations := { path; message } :: !violations in
  let rec walk path = function
    | Ltl.Atom _ -> ()
    | Ltl.Not p ->
      if not (is_boolean p) then
        report path "negation applied to a non-boolean operand";
      walk (path ^ ".not") p
    | Ltl.And (p, q) ->
      walk (path ^ ".and.left") p;
      walk (path ^ ".and.right") q
    | Ltl.Or (p, q) ->
      if (not (is_boolean p)) && not (is_boolean q) then
        report path "both operands of '||' are non-boolean";
      walk (path ^ ".or.left") p;
      walk (path ^ ".or.right") q
    | Ltl.Implies (p, q) ->
      if not (is_boolean p) then
        report path "antecedent of '->' is non-boolean";
      walk (path ^ ".implies.left") p;
      walk (path ^ ".implies.right") q
    | Ltl.Next_n (_, p) -> walk (path ^ ".next") p
    | Ltl.Next_event (_, p) -> walk (path ^ ".nexte") p
    | Ltl.Until (p, q) ->
      if not (is_boolean p) then
        report path "left operand of 'until' is non-boolean";
      walk (path ^ ".until.left") p;
      walk (path ^ ".until.right") q
    | Ltl.Release (p, q) ->
      if not (is_boolean p) then
        report path "left operand of 'release' is non-boolean";
      walk (path ^ ".release.left") p;
      walk (path ^ ".release.right") q
    | Ltl.Always p -> walk (path ^ ".always") p
    | Ltl.Eventually p -> walk (path ^ ".eventually") p
  in
  walk "root" t;
  List.rev !violations

let is_simple t = check t = []

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.path v.message
