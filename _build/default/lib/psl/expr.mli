(** Boolean-layer expressions over DUV signals.

    Atomic propositions of PSL properties are built from this layer:
    boolean signals, integer signals compared against arithmetic
    expressions, and boolean connectives.  Expressions are evaluated
    against a lookup function mapping signal names to current values. *)

(** Runtime value of a signal. *)
type value =
  | VBool of bool
  | VInt of int

(** Comparison operators of the boolean layer. *)
type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

(** Integer arithmetic over signals. *)
type arith =
  | Int of int
  | Avar of string
  | Add of arith * arith
  | Sub of arith * arith
  | Mul of arith * arith

(** Boolean expressions. *)
type t =
  | Bool of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * arith * arith

(** Raised by {!eval} on unbound signals or type mismatches. *)
exception Eval_error of string

val equal : t -> t -> bool
val compare : t -> t -> int
val equal_value : value -> value -> bool
val equal_arith : arith -> arith -> bool

(** [signals e] is the sorted, duplicate-free list of signal names
    mentioned anywhere in [e]. *)
val signals : t -> string list

val signals_arith : arith -> string list

(** [mentions_any e names] is true iff [e] mentions at least one of
    [names]. *)
val mentions_any : t -> string list -> bool

(** [eval lookup e] evaluates [e].
    @raise Eval_error on unbound signals or type mismatches. *)
val eval : (string -> value option) -> t -> bool

val eval_arith : (string -> value option) -> arith -> int

(** Structural simplification: constant folding and unit laws.  The
    result is [Bool _] whenever the expression is constant. *)
val simplify : t -> t

val pp_value : Format.formatter -> value -> unit
val pp_arith : Format.formatter -> arith -> unit

(** Precedence-aware printer; output is re-parseable by {!Parser}. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
