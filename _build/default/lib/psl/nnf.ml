let rec positive = function
  | Ltl.Atom _ as a -> a
  | Ltl.Not p -> negative p
  | Ltl.And (p, q) -> Ltl.And (positive p, positive q)
  | Ltl.Or (p, q) -> Ltl.Or (positive p, positive q)
  | Ltl.Implies (p, q) -> Ltl.Or (negative p, positive q)
  | Ltl.Next_n (n, p) -> Ltl.Next_n (n, positive p)
  | Ltl.Next_event (ne, p) -> Ltl.Next_event (ne, positive p)
  | Ltl.Until (p, q) -> Ltl.Until (positive p, positive q)
  | Ltl.Release (p, q) -> Ltl.Release (positive p, positive q)
  | Ltl.Always p -> Ltl.Always (positive p)
  | Ltl.Eventually p -> Ltl.Eventually (positive p)

and negative = function
  | Ltl.Atom (Expr.Bool b) -> Ltl.Atom (Expr.Bool (not b))
  | Ltl.Atom _ as a -> Ltl.Not a
  | Ltl.Not p -> positive p
  | Ltl.And (p, q) -> Ltl.Or (negative p, negative q)
  | Ltl.Or (p, q) -> Ltl.And (negative p, negative q)
  | Ltl.Implies (p, q) -> Ltl.And (positive p, negative q)
  | Ltl.Next_n (n, p) -> Ltl.Next_n (n, negative p)
  | Ltl.Next_event (ne, p) -> Ltl.Next_event (ne, negative p)
  | Ltl.Until (p, q) -> Ltl.Release (negative p, negative q)
  | Ltl.Release (p, q) -> Ltl.Until (negative p, negative q)
  | Ltl.Always p -> Ltl.Eventually (negative p)
  | Ltl.Eventually p -> Ltl.Always (negative p)

let convert t = positive t
