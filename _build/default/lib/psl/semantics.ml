type verdict =
  | True
  | False
  | Unknown
[@@deriving eq]

let pp_verdict ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Unknown -> Format.pp_print_string ppf "unknown"

let v_not = function
  | True -> False
  | False -> True
  | Unknown -> Unknown

let v_and a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let v_or a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let of_bool b = if b then True else False

let eval_at trace start t =
  let len = Trace.length trace in
  if start < 0 || start >= len then invalid_arg "Semantics.eval_at: index out of bounds";
  (* [go i t]: verdict of [t] at position [i]; [i] may be [len]
     (off the end), which yields [Unknown] for anything that still
     needs an observation. *)
  let rec go i t =
    if i >= len then Unknown
    else
      let entry = Trace.get trace i in
      match t with
      | Ltl.Atom e -> of_bool (Expr.eval (Trace.lookup entry) e)
      | Ltl.Not p -> v_not (go i p)
      | Ltl.And (p, q) -> v_and (go i p) (go i q)
      | Ltl.Or (p, q) -> v_or (go i p) (go i q)
      | Ltl.Implies (p, q) -> v_or (v_not (go i p)) (go i q)
      | Ltl.Next_n (n, p) -> go (i + n) p
      | Ltl.Next_event (ne, p) ->
        let target = entry.Trace.time + ne.Ltl.eps in
        (match Trace.index_at_time trace ~from:(i + 1) ~time:target with
         | Some j -> go j p
         | None ->
           (match Trace.first_index_after trace ~from:(i + 1) ~time:target with
            | Some _ -> False
            | None -> Unknown))
      | Ltl.Until (p, q) ->
        (* U(i) = q(i) or (p(i) and U(i+1)), iteratively from the end
           of the trace backwards to avoid deep recursion. *)
        let acc = ref Unknown in
        for j = len - 1 downto i do
          acc := v_or (go j q) (v_and (go j p) !acc)
        done;
        !acc
      | Ltl.Release (p, q) ->
        let acc = ref Unknown in
        for j = len - 1 downto i do
          acc := v_and (go j q) (v_or (go j p) !acc)
        done;
        !acc
      | Ltl.Always p ->
        let acc = ref Unknown in
        for j = len - 1 downto i do
          acc := v_and (go j p) !acc
        done;
        !acc
      | Ltl.Eventually p ->
        let acc = ref Unknown in
        for j = len - 1 downto i do
          acc := v_or (go j p) !acc
        done;
        !acc
  in
  go start t

let eval trace t = if Trace.length trace = 0 then Unknown else eval_at trace 0 t
let holds trace t = eval trace t <> False
let violated trace t = eval trace t = False
