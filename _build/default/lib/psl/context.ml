type clock_edge =
  | Any_edge
  | Posedge
  | Negedge
[@@deriving eq, ord]

type clock =
  | Base_clock
  | Edge of clock_edge
  | Edge_and of clock_edge * Expr.t
  | Named_edge of string * clock_edge
  | Named_edge_and of string * clock_edge * Expr.t
[@@deriving eq, ord]

type transaction =
  | Base_trans
  | Trans_and of Expr.t
[@@deriving eq, ord]

type t =
  | Clock of clock
  | Transaction of transaction
[@@deriving eq, ord]

let signals = function
  | Clock (Base_clock | Edge _ | Named_edge _) -> []
  | Clock (Edge_and (_, e) | Named_edge_and (_, _, e)) -> Expr.signals e
  | Transaction Base_trans -> []
  | Transaction (Trans_and e) -> Expr.signals e

let clock_name = function
  | Clock (Named_edge (name, _) | Named_edge_and (name, _, _)) -> Some name
  | Clock (Base_clock | Edge _ | Edge_and _) | Transaction _ -> None

let edge_name = function
  | Any_edge -> "clk"
  | Posedge -> "clk_pos"
  | Negedge -> "clk_neg"

let named_edge_name clock edge =
  match edge with
  | Any_edge -> clock
  | Posedge -> clock ^ "_pos"
  | Negedge -> clock ^ "_neg"

let pp ppf = function
  | Clock Base_clock -> Format.pp_print_string ppf "@true"
  | Clock (Edge e) -> Format.fprintf ppf "@%s" (edge_name e)
  | Clock (Edge_and (e, expr)) ->
    Format.fprintf ppf "@(%s && %a)" (edge_name e) Expr.pp expr
  | Clock (Named_edge (clock, e)) ->
    Format.fprintf ppf "@%s" (named_edge_name clock e)
  | Clock (Named_edge_and (clock, e, expr)) ->
    Format.fprintf ppf "@(%s && %a)" (named_edge_name clock e) Expr.pp expr
  | Transaction Base_trans -> Format.pp_print_string ppf "@tb"
  | Transaction (Trans_and expr) ->
    Format.fprintf ppf "@(tb && %a)" Expr.pp expr

let to_string c = Format.asprintf "%a" pp c
