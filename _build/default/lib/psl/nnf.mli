(** Negation normal form (step 1 of Methodology III.1).

    The result contains no [Implies], and every [Not] is applied
    directly to an atom, matching Def. II.1 of the paper
    ([Ltl.is_nnf] holds). *)

(** [convert t] rewrites [t] into negation normal form using the
    classical dualities:
    {ul
    {- [!(p && q)  ==  !p || !q] (and dual)}
    {- [!(p -> q)  ==  p && !q]}
    {- [!(next[n] p)  ==  next[n] !p]}
    {- [!(p until q)  ==  !p release !q] (and dual)}
    {- [!(always p)  ==  eventually !p] (and dual)}}

    [Next_event] is treated like [next] for negation; Methodology III.1
    applies NNF before introducing [next_eps^tau], so this case only
    arises when callers normalize already-abstracted formulas. *)
val convert : Ltl.t -> Ltl.t
