(** Validator for the PSL simple subset (IEEE 1850, clause 4.4.4).

    The simple subset restricts property composition so that time moves
    monotonically left-to-right through a property, which is what makes
    single-pass checker synthesis possible.  The checks implemented
    here follow the restrictions relevant to the operator set of
    Def. II.1:
    {ul
    {- the operand of a negation must be boolean;}
    {- the left operand of [until] must be boolean;}
    {- the left operand of [release] must be boolean;}
    {- at most one operand of [||] (and of the antecedent side of
       [->]) may be non-boolean.}}

    A formula is {e boolean} when it contains no temporal operator. *)

type violation = {
  path : string;  (** human-readable position, e.g. ["until.left"] *)
  message : string;
}

(** True when the formula contains no temporal operator. *)
val is_boolean : Ltl.t -> bool

(** [check t] is the list of violations, [[]] when [t] is in the
    simple subset. *)
val check : Ltl.t -> violation list

val is_simple : Ltl.t -> bool

val pp_violation : Format.formatter -> violation -> unit
