(** Exhaustive bounded-trace verification: a miniature model checker.

    Enumerates {e every} cycle-accurate trace over a small boolean
    signal alphabet up to a given depth and compares formula verdicts
    on all of them.  Complements the randomised tests: the
    transformation laws used by the methodology (push-ahead
    distributivity, NNF dualities, sugar desugarings) are checked on
    the complete space of small traces, not a sample.

    Cost is [(2^|signals|)^depth] trace evaluations per depth; keep
    [|signals| <= 3] and [depth <= 6]. *)

(** Outcome of a bounded comparison. *)
type result =
  | Holds
  | Counterexample of Trace.t

(** [equivalent ~signals ~max_depth f g] — do [f] and [g] get the same
    three-valued verdict on every trace of every length in
    [1..max_depth]?  Trace entries are at 0, 10, 20, ... ns. *)
val equivalent : signals:string list -> max_depth:int -> Ltl.t -> Ltl.t -> result

(** [implies ~signals ~max_depth f g] — on every bounded trace where
    [f] is not violated, [g] is not violated either.  This is the
    reuse-safety relation behind the Fig. 4 weakening classification:
    a checker for [g] may only fail where the original [f] would have
    failed too.  (The [True]-premise variant would be vacuous on
    finite traces, where [always] never resolves to [True].) *)
val implies : signals:string list -> max_depth:int -> Ltl.t -> Ltl.t -> result

(** [forall ~signals ~max_depth predicate] — generic driver: calls
    [predicate] on every bounded trace, stopping at the first trace
    where it is [false]. *)
val forall : signals:string list -> max_depth:int -> (Trace.t -> bool) -> result

val pp_result : Format.formatter -> result -> unit
