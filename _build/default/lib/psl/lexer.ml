type token =
  | IDENT of string
  | INT of int
  | TRUE
  | FALSE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | PIPE
  | SUFFIX_IMPL
  | SUFFIX_IMPL_NEXT
  | COMMA
  | DOTDOT
  | SEMI
  | AT
  | BANG
  | AND_AND
  | OR_OR
  | ARROW
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | KW_ALWAYS
  | KW_EVENTUALLY
  | KW_NEVER
  | KW_NEXT
  | KW_NEXT_A
  | KW_NEXT_E
  | KW_NEXTE
  | KW_UNTIL
  | KW_WEAK_UNTIL
  | KW_RELEASE
  | KW_BEFORE
  | KW_PROPERTY
  | KW_CONST
  | EOF

type located = {
  token : token;
  line : int;
  col : int;
}

exception Lex_error of {
  line : int;
  col : int;
  message : string;
}

let keyword_of_ident = function
  | "always" -> Some KW_ALWAYS
  | "eventually" -> Some KW_EVENTUALLY
  | "never" -> Some KW_NEVER
  | "next" -> Some KW_NEXT
  | "next_a" -> Some KW_NEXT_A
  | "next_e" -> Some KW_NEXT_E
  | "nexte" -> Some KW_NEXTE
  | "until" -> Some KW_UNTIL
  | "weak_until" -> Some KW_WEAK_UNTIL
  | "release" -> Some KW_RELEASE
  | "before" -> Some KW_BEFORE
  | "property" -> Some KW_PROPERTY
  | "const" -> Some KW_CONST
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let len = String.length src in
  let line = ref 1 and bol = ref 0 in
  let error i message =
    raise (Lex_error { line = !line; col = i - !bol + 1; message })
  in
  (* Scans from position [i]; accumulates located tokens in reverse. *)
  let rec scan i acc =
    if i >= len then List.rev ({ token = EOF; line = !line; col = i - !bol + 1 } :: acc)
    else
      let emit ?(width = 1) token =
        let located = { token; line = !line; col = i - !bol + 1 } in
        scan (i + width) (located :: acc)
      in
      match src.[i] with
      | ' ' | '\t' | '\r' -> scan (i + 1) acc
      | '\n' ->
        incr line;
        bol := i + 1;
        scan (i + 1) acc
      | '-' when i + 1 < len && src.[i + 1] = '-' ->
        let rec skip j = if j < len && src.[j] <> '\n' then skip (j + 1) else j in
        scan (skip (i + 2)) acc
      | '-' when i + 1 < len && src.[i + 1] = '>' -> emit ~width:2 ARROW
      | '-' -> emit MINUS
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '[' -> emit LBRACKET
      | ']' -> emit RBRACKET
      | ',' -> emit COMMA
      | '.' when i + 1 < len && src.[i + 1] = '.' -> emit ~width:2 DOTDOT
      | ';' -> emit SEMI
      | '@' -> emit AT
      | '+' -> emit PLUS
      | '*' -> emit STAR
      | '&' when i + 1 < len && src.[i + 1] = '&' -> emit ~width:2 AND_AND
      | '&' -> error i "expected '&&'"
      | '|' when i + 1 < len && src.[i + 1] = '|' -> emit ~width:2 OR_OR
      | '|' when i + 2 < len && src.[i + 1] = '-' && src.[i + 2] = '>' ->
        emit ~width:3 SUFFIX_IMPL
      | '|' when i + 2 < len && src.[i + 1] = '=' && src.[i + 2] = '>' ->
        emit ~width:3 SUFFIX_IMPL_NEXT
      | '|' -> emit PIPE
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | '!' when i + 1 < len && src.[i + 1] = '=' -> emit ~width:2 NEQ
      | '!' -> emit BANG
      | '=' when i + 1 < len && src.[i + 1] = '=' -> emit ~width:2 EQ
      | '=' -> emit EQ
      | '<' when i + 1 < len && src.[i + 1] = '=' -> emit ~width:2 LE
      | '<' when i + 1 < len && src.[i + 1] = '>' -> emit ~width:2 NEQ
      | '<' -> emit LT
      | '>' when i + 1 < len && src.[i + 1] = '=' -> emit ~width:2 GE
      | '>' -> emit GT
      | c when is_digit c ->
        let rec stop j = if j < len && is_digit src.[j] then stop (j + 1) else j in
        let j = stop i in
        let text = String.sub src i (j - i) in
        (match int_of_string_opt text with
         | Some n -> emit ~width:(j - i) (INT n)
         | None -> error i (Printf.sprintf "integer literal %S out of range" text))
      | c when is_ident_start c ->
        let rec stop j = if j < len && is_ident_char src.[j] then stop (j + 1) else j in
        let j = stop i in
        let text = String.sub src i (j - i) in
        let token =
          match keyword_of_ident text with
          | Some kw -> kw
          | None -> IDENT text
        in
        emit ~width:(j - i) token
      | c -> error i (Printf.sprintf "unexpected character %C" c)
  in
  scan 0 []

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | TRUE -> "'true'"
  | FALSE -> "'false'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | PIPE -> "'|'"
  | SUFFIX_IMPL -> "'|->'"
  | SUFFIX_IMPL_NEXT -> "'|=>'"
  | COMMA -> "','"
  | DOTDOT -> "'..'"
  | SEMI -> "';'"
  | AT -> "'@'"
  | BANG -> "'!'"
  | AND_AND -> "'&&'"
  | OR_OR -> "'||'"
  | ARROW -> "'->'"
  | EQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | KW_ALWAYS -> "'always'"
  | KW_EVENTUALLY -> "'eventually'"
  | KW_NEVER -> "'never'"
  | KW_NEXT -> "'next'"
  | KW_NEXT_A -> "'next_a'"
  | KW_NEXT_E -> "'next_e'"
  | KW_NEXTE -> "'nexte'"
  | KW_UNTIL -> "'until'"
  | KW_WEAK_UNTIL -> "'weak_until'"
  | KW_RELEASE -> "'release'"
  | KW_BEFORE -> "'before'"
  | KW_PROPERTY -> "'property'"
  | KW_CONST -> "'const'"
  | EOF -> "end of input"

let pp_token ppf t = Format.pp_print_string ppf (token_to_string t)
