type result =
  | Holds
  | Counterexample of Trace.t

(* Trace entry environments: one per subset of true signals. *)
let all_envs signals =
  let k = List.length signals in
  List.init (1 lsl k) (fun bits ->
    List.mapi (fun i name -> (name, Expr.VBool (bits land (1 lsl i) <> 0))) signals)

(* Depth-first enumeration of traces of exactly [len] entries. *)
let rec enumerate envs len prefix k =
  if len = 0 then k (List.rev prefix)
  else
    List.for_all (fun env -> enumerate envs (len - 1) (env :: prefix) k) envs

let forall ~signals ~max_depth predicate =
  if List.length signals > 4 then
    invalid_arg "Exhaustive.forall: too many signals (max 4)";
  if max_depth > 8 then invalid_arg "Exhaustive.forall: depth too large (max 8)";
  let envs = all_envs signals in
  let witness = ref None in
  let ok =
    List.for_all
      (fun len ->
        enumerate envs len [] (fun entries ->
          let trace = Trace.cycle_trace ~period:10 entries in
          if predicate trace then true
          else begin
            witness := Some trace;
            false
          end))
      (List.init max_depth (fun i -> i + 1))
  in
  if ok then Holds
  else
    match !witness with
    | Some trace -> Counterexample trace
    | None -> assert false

let equivalent ~signals ~max_depth f g =
  forall ~signals ~max_depth (fun trace ->
    Semantics.equal_verdict (Semantics.eval trace f) (Semantics.eval trace g))

let implies ~signals ~max_depth f g =
  forall ~signals ~max_depth (fun trace ->
    Semantics.eval trace f = Semantics.False
    || Semantics.eval trace g <> Semantics.False)

let pp_result ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Counterexample trace ->
    Format.fprintf ppf "counterexample:@,%a" Trace.pp trace
