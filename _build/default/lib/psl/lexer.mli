(** Tokenizer for the property language.

    Comments run from [--] to end of line.  [=] and [==] both lex to
    {!EQ} inside expressions; the property-file parser interprets the
    first [=] after a property name as the definition sign. *)

type token =
  | IDENT of string
  | INT of int
  | TRUE
  | FALSE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | PIPE
  | SUFFIX_IMPL  (** [|->] (overlapping suffix implication) *)
  | SUFFIX_IMPL_NEXT  (** [|=>] (non-overlapping) *)
  | COMMA
  | DOTDOT
  | SEMI
  | AT
  | BANG
  | AND_AND
  | OR_OR
  | ARROW
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | KW_ALWAYS
  | KW_EVENTUALLY
  | KW_NEVER
  | KW_NEXT
  | KW_NEXT_A
  | KW_NEXT_E
  | KW_NEXTE
  | KW_UNTIL
  | KW_WEAK_UNTIL
  | KW_RELEASE
  | KW_BEFORE
  | KW_PROPERTY
  | KW_CONST
  | EOF

(** A token paired with its 1-based line and column. *)
type located = {
  token : token;
  line : int;
  col : int;
}

exception Lex_error of {
  line : int;
  col : int;
  message : string;
}

(** Tokenize a whole string; the result always ends with {!EOF}. *)
val tokenize : string -> located list

val pp_token : Format.formatter -> token -> unit
val token_to_string : token -> string
