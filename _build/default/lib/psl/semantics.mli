(** Three-valued finite-trace semantics of LTL with [next_eps^tau].

    Used as the reference oracle in tests and by the empirical
    validation of Theorems III.1 and III.2.  Verdicts follow the usual
    LTL3 convention: [True]/[False] when every infinite extension of
    the trace agrees, [Unknown] when the finite prefix is too short to
    decide.

    [next_eps^tau p] at position [i] (Def. III.3): let
    [target = time(i) + eps];
    {ul
    {- if some position [j > i] has exactly time [target], the verdict
       is that of [p] at [j];}
    {- if some position exists after [time(i)] with time beyond
       [target] but none at [target], the verdict is [False] (the
       verification environment cannot evaluate the operand at the
       required instant);}
    {- if the trace ends before [target], the verdict is [Unknown].}} *)

type verdict =
  | True
  | False
  | Unknown

val equal_verdict : verdict -> verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

(** Kleene connectives, exposed for checker code. *)
val v_not : verdict -> verdict

val v_and : verdict -> verdict -> verdict
val v_or : verdict -> verdict -> verdict
val of_bool : bool -> verdict

(** [eval_at trace i t] evaluates [t] at position [i].
    @raise Invalid_argument if [i] is out of bounds.
    @raise Expr.Eval_error on unbound signals in atoms. *)
val eval_at : Trace.t -> int -> Ltl.t -> verdict

(** [eval trace t] is [eval_at trace 0 t] ([Unknown] on the empty
    trace). *)
val eval : Trace.t -> Ltl.t -> verdict

(** [holds trace t] is true iff the verdict is not [False] — i.e. no
    violation is observable on the finite trace.  This is the
    "M |= p" notion used for dynamic ABV. *)
val holds : Trace.t -> Ltl.t -> bool

(** True iff the verdict is [False]. *)
val violated : Trace.t -> Ltl.t -> bool
