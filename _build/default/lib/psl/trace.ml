type entry = {
  time : int;
  env : (string * Expr.value) list;
}

type t = entry array

exception Non_monotonic of {
  index : int;
  time : int;
}

let of_list entries =
  let arr = Array.of_list entries in
  Array.iteri
    (fun i e ->
      if i > 0 && e.time <= arr.(i - 1).time then
        raise (Non_monotonic { index = i; time = e.time }))
    arr;
  arr

let length = Array.length
let get t i = t.(i)
let time_at t i = t.(i).time
let lookup entry name = List.assoc_opt name entry.env

(* Binary search for the first index >= from with time >= target. *)
let lower_bound t ~from ~target =
  let n = Array.length t in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.(mid).time < target then go (mid + 1) hi else go lo mid
  in
  go (max from 0) n

let index_at_time t ~from ~time =
  let i = lower_bound t ~from ~target:time in
  if i < Array.length t && t.(i).time = time then Some i else None

let first_index_after t ~from ~time =
  let i = lower_bound t ~from ~target:(time + 1) in
  if i < Array.length t then Some i else None

let cycle_trace ?(offset = 0) ~period envs =
  if period <= 0 then invalid_arg "Trace.cycle_trace: period must be positive";
  of_list (List.mapi (fun i env -> { time = offset + (i * period); env }) envs)

let filter keep t = Array.of_list (List.filter keep (Array.to_list t))

let to_list = Array.to_list

let pp ppf t =
  let pp_binding ppf (name, v) =
    Format.fprintf ppf "%s=%a" name Expr.pp_value v
  in
  let pp_entry ppf e =
    Format.fprintf ppf "@[<h>%dns: %a@]" e.time
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_binding)
      e.env
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (Array.to_list t)
