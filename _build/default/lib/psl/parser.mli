(** Recursive-descent parser for the property language.

    Grammar (lowest to highest precedence):
    {v
      formula   ::= untilrel ('->' formula)?                (right assoc)
      untilrel  ::= or ( ('until' | 'weak_until' | 'release'
                          | 'before') untilrel )?            (right assoc)
      or        ::= and ('||' and)*
      and       ::= unary ('&&' unary)*
      unary     ::= '!' unary
                  | 'always' unary | 'eventually' unary
                  | 'next' ('[' INT ']')? unary
                  | ('next_a' | 'next_e') '[' INT '..' INT ']' unary
                  | 'nexte' '[' INT ',' INT ']' unary
                  | compare
      compare   ::= arith cmpop arith          (when cmpop follows)
                  | 'true' | 'false' | IDENT | '(' formula ')'
      arith     ::= term (('+' | '-') term)*
      term      ::= factor ('*' factor)*
      factor    ::= INT | '-' factor | IDENT | '(' arith ')'
      context   ::= '@' ( 'true' | 'clk' | 'clk_pos' | 'clk_neg' | 'tb'
                        | NAME | NAME'_pos' | NAME'_neg'   (named clocks)
                        | '(' ctxhead '&&' boolexpr ')' )
      file      ::= ( 'const' IDENT '=' INT ';'
                    | 'property' IDENT '=' formula context? ';' )*
    v}

    Constants declared with [const] may be used wherever an integer is
    expected in later items (next bounds, window bounds, comparisons),
    e.g. [const LATENCY = 17; property p = always (!ds ||
    next[LATENCY](rdy)) @clk_pos;].

    [=] and [==] are interchangeable inside comparisons (the paper
    writes [indata = 0]).

    Sugar (desugared during parsing, so downstream passes only see the
    Def. II.1 operators):
    {ul
    {- [never p == always (!p)]}
    {- [p weak_until q == q release (p || q)]}
    {- [a before b == !b until (a && !b)] (strong: [a] must occur)}
    {- [next_a[i..j] p] — [p] at {e all} cycles [i..j]: a conjunction
       of [next[k] p]}
    {- [next_e[i..j] p] — [p] at {e some} cycle in [i..j]: a
       disjunction of [next[k] p]}} *)

exception Parse_error of {
  line : int;
  col : int;
  message : string;
}

(** Parse a formula with an optional trailing [@context]; the context
    defaults to the implicit clock context [true]. *)
val formula : string -> Ltl.t * Context.t

(** Parse a formula, rejecting any trailing context annotation. *)
val formula_only : string -> Ltl.t

(** Parse a boolean expression (no temporal operators). *)
val expr : string -> Expr.t

(** Parse a property file: a sequence of
    [property NAME = formula \[@context\];] items with [--] comments. *)
val file : string -> Property.t list

(** [property_exn ~name source] parses a single formula-with-context
    into a named property. *)
val property_exn : name:string -> string -> Property.t
