open Tabv_psl

(** Def. III.2: mapping an RTL clock context to a TLM transaction
    context.

    {ul
    {- the basic clock context [true] and the pure edge contexts
       [@clk], [@clk_pos], [@clk_neg] map to the basic transaction
       context [T_b] (evaluate at the end of every transaction);}
    {- a gated edge context [clk_edge && var_expr] maps to
       [T_b && var_expr].}} *)

(** Map a clock context per Def. III.2. *)
val map_clock : Context.clock -> Context.transaction

(** [run c] applies {!map_clock} to clock contexts and leaves
    transaction contexts unchanged. *)
val run : Context.t -> Context.t
