open Tabv_psl

(** Algorithm III.1: substitution of [next\[n_i\]] with
    [next_eps^tau].

    Every maximal chain [next[n_i] a_i] (whose operand is an atom or a
    negated atom, guaranteed by {!Push_ahead.run}) is replaced by
    [next_eps^tau a_i] with [tau = i] (its 1-based left-to-right
    position) and [eps = n_i * clock_period] nanoseconds. *)

(** Raised when a [next] chain is applied to a non-atomic operand,
    i.e. the push-ahead procedure has not been run. *)
exception Not_pushed of Ltl.t

(** One performed substitution, for reporting. *)
type subst = {
  tau : int;  (** ordinal position of the operator, 1-based *)
  cycles : int;  (** the [n_i] of the replaced [next\[n_i\]] *)
  eps : int;  (** [n_i * clock_period], nanoseconds *)
}

(** [run ~clock_period t] performs the substitution and reports the
    list of substitutions in left-to-right order.
    Already-present [Next_event] nodes are left untouched (the pass is
    idempotent on its own output).
    @raise Not_pushed if [not (Ltl.is_pushed t)].
    @raise Invalid_argument if [clock_period <= 0]. *)
val run : clock_period:int -> Ltl.t -> Ltl.t * subst list
