open Tabv_psl

exception Not_in_nnf of Ltl.t

(* [push n t] is [next[n] t] with the chain distributed to the
   leaves.  [n = 0] at the top level. *)
let rec push n t =
  match t with
  | Ltl.Atom _ | Ltl.Not (Ltl.Atom _) -> Ltl.next_n n t
  | Ltl.Not _ | Ltl.Implies _ -> raise (Not_in_nnf t)
  | Ltl.Next_event _ -> raise (Not_in_nnf t)
  | Ltl.Next_n (k, p) -> push (n + k) p
  | Ltl.And (p, q) -> Ltl.And (push n p, push n q)
  | Ltl.Or (p, q) -> Ltl.Or (push n p, push n q)
  | Ltl.Until (p, q) -> Ltl.Until (push n p, push n q)
  | Ltl.Release (p, q) -> Ltl.Release (push n p, push n q)
  | Ltl.Always p -> Ltl.Always (push n p)
  | Ltl.Eventually p -> Ltl.Eventually (push n p)

let run t = push 0 t
