open Tabv_psl

(** Abstraction of signals (Sec. III-B, Fig. 4).

    When the RTL-to-TLM abstraction of the DUV removes protocol
    signals, every atomic proposition mentioning a removed signal
    becomes unevaluable and is deleted; the deletion is propagated
    upwards with the transformation rules of Fig. 4:

    {v
      a_s            ~> 0        next(a_s)      ~> 0
      p || 0  ~> p               0 || p   ~> p
      p && 0  ~> p               0 && p   ~> p
      p until 0   ~> p           0 until p     ~> p
      p release 0 ~> 0           0 release p   ~> p
    v}

    (The published table prints the [0 until p] row twice with
    conflicting results; by duality with the [release] row the second
    occurrence is read as [0 release p ~> p].  See DESIGN.md.)

    Each rule application is classified by its logical effect so the
    caller can decide whether the surviving formula is a logical
    consequence of the original (safe to reuse automatically) or
    requires human review, as the paper discusses:
    {ul
    {- dropping a conjunct is a {e weakening} ([p && a] entails [p]);}
    {- dropping a disjunct is a {e strengthening} ([p || a] does not
       entail [p]);}
    {- the [until]/[release] rules are neither in general.}} *)

(** Logical effect of one rule application. *)
type effect_kind =
  | Weakening  (** result is entailed by the original subformula *)
  | Strengthening  (** result entails the original subformula *)
  | Review  (** neither direction holds in general *)

type applied_rule = {
  rule : string;  (** the Fig. 4 rule, e.g. ["p && 0 ~> p"] *)
  kind : effect_kind;
}

(** Overall relation of the surviving formula to the original. *)
type classification =
  | Unchanged  (** no abstracted signal occurred *)
  | Weakened  (** only weakening rules applied: logical consequence *)
  | Needs_review
      (** at least one strengthening or review rule applied: a TLM
          failure may stem from the transformation itself rather than
          from a wrong TLM model (Sec. III-B) *)

type result = {
  formula : Ltl.t option;
      (** [None] when the whole property was deleted (its semantics
          depended entirely on the abstracted protocol) *)
  applied : applied_rule list;  (** in application order *)
  classification : classification;
}

(** Raised on formulas outside negation normal form. *)
exception Not_in_nnf of Ltl.t

(** [run ~removed t] deletes every atom mentioning a signal in
    [removed] and propagates per Fig. 4.
    @raise Not_in_nnf if [not (Ltl.is_nnf t)]. *)
val run : removed:string list -> Ltl.t -> result

val pp_applied_rule : Format.formatter -> applied_rule -> unit
val pp_classification : Format.formatter -> classification -> unit
