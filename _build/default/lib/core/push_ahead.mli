open Tabv_psl

(** The push-ahead procedure (first phase of step 2, Methodology III.1).

    Pushes [next] operators towards the leaves so that their operands
    are exclusively atomic propositions or negations of atomic
    propositions, using the equivalences:
    {ul
    {- [next(a || b) == next(a) || next(b)]}
    {- [next(a && b) == next(a) && next(b)]}
    {- [next(a until b) == next(a) until next(b)]}
    {- [next(a release b) == next(a) release next(b)]}}

    [always]/[eventually] are handled through their definitions
    [always p == false release p] and [eventually p == true until p]
    (a [next] applied to a constant is the constant), giving
    [next(always p) == always(next p)] and dually.

    Nested chains are collapsed: [next(next[n] a)] becomes
    [next[n+1] a]. *)

(** Raised when the input is not in negation normal form or already
    contains [next_eps^tau] operators. *)
exception Not_in_nnf of Ltl.t

(** [run t] pushes all [next] operators ahead.
    Postcondition: [Ltl.is_pushed (run t)].
    @raise Not_in_nnf if [not (Ltl.is_nnf t)] or [t] contains
    [Next_event]. *)
val run : Ltl.t -> Ltl.t
