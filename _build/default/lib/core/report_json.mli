(** Machine-readable (JSON) form of the methodology reports, for
    integration into verification flows and CI.

    The emitter is self-contained (no JSON library dependency) and
    produces deterministic, valid JSON: strings are escaped per RFC
    8259, keys appear in a fixed order. *)

(** Minimal JSON document model. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of json list
  | Assoc of (string * json) list

val to_string : json -> string

(** One methodology report as JSON: input/output properties (printed
    in the property language), pipeline stages, applied Fig. 4 rules,
    substitutions, and review flags. *)
val of_report : Methodology.report -> json

(** A whole property set's reports: [{"clock_period": ..,
    "abstracted_signals": [..], "properties": [..]}]. *)
val of_reports : Methodology.report list -> json
