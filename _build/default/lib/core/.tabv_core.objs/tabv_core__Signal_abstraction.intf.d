lib/core/signal_abstraction.mli: Format Ltl Tabv_psl
