lib/core/context_map.mli: Context Tabv_psl
