lib/core/report_json.mli: Methodology
