lib/core/report_json.ml: Buffer Char Context List Ltl Methodology Next_substitution Printf Property Signal_abstraction Simple_subset String Tabv_psl
