lib/core/push_ahead.mli: Ltl Tabv_psl
