lib/core/push_ahead.ml: Ltl Tabv_psl
