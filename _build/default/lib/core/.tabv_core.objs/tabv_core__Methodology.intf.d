lib/core/methodology.mli: Format Ltl Next_substitution Property Signal_abstraction Simple_subset Tabv_psl
