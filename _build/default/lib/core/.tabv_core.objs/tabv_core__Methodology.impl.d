lib/core/methodology.ml: Context Context_map Format List Ltl Next_substitution Nnf Printf Property Push_ahead Signal_abstraction Simple_subset String Tabv_psl
