lib/core/next_substitution.ml: List Ltl Tabv_psl
