lib/core/context_map.ml: Context Tabv_psl
