lib/core/signal_abstraction.ml: Expr Format List Ltl Tabv_psl
