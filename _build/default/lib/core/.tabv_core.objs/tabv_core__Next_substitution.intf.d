lib/core/next_substitution.mli: Ltl Tabv_psl
