open Tabv_psl

(** Methodology III.1: the end-to-end RTL-to-TLM property abstraction
    pipeline.

    Given an RTL property [p] with clock context [C], a clock period
    [c], and the set of I/O signals removed by the DUV abstraction,
    the pipeline performs:
    {ol
    {- negation normal form (Def. II.1);}
    {- signal abstraction (Fig. 4) — performed here so protocol-only
       properties are deleted before any temporal rewriting;}
    {- push-ahead of [next] operators (Sec. III-A);}
    {- Algorithm III.1: [next\[n_i\] ~> next_eps^tau] with
       [eps = n_i * c];}
    {- clock-to-transaction context mapping (Def. III.2).}}

    Theorem III.2 guarantees that when the RTL and TLM models are
    timing equivalent (Def. III.1) and the signal abstraction only
    weakened the formula, [M_RTL |= p @ C] implies
    [M_TLM |= q @ T]. *)

(** Raised when the input property already has a transaction
    context. *)
exception Not_an_rtl_property of Property.t

(** Full per-property transformation record. *)
type report = {
  input : Property.t;
  clock_period : int;  (** ns *)
  abstracted_signals : string list;
  simple_subset_violations : Simple_subset.violation list;
      (** informational: violations found on the {e input} property *)
  nnf : Ltl.t;  (** after step 1 *)
  signal_abstraction : Signal_abstraction.result;  (** after step 2 *)
  pushed : Ltl.t option;  (** after push-ahead; [None] if deleted *)
  substitutions : Next_substitution.subst list;  (** Algorithm III.1 *)
  output : Property.t option;
      (** the TLM property [q @ T]; [None] if the property was deleted
          by signal abstraction *)
  requires_review : bool;
      (** true when signal abstraction did not produce a logical
          consequence (Sec. III-B): a TLM failure of this property
          needs human investigation *)
}

(** [abstract ~clock_period ?clock_periods ?abstracted_signals ?rename
    p] runs the pipeline on one property.  [rename] maps the input
    name to the output name (default: identity).  Properties with a
    {e named} clock context use that clock's period from
    [clock_periods]; [clock_period] is the default clock's.
    @raise Not_an_rtl_property if [p] carries a transaction context.
    @raise Invalid_argument if the applicable period is non-positive
    or a named clock has no period in [clock_periods]. *)
val abstract :
  clock_period:int ->
  ?clock_periods:(string * int) list ->
  ?abstracted_signals:string list ->
  ?rename:(string -> string) ->
  Property.t ->
  report

(** Run the pipeline on a property set, preserving order. *)
val abstract_all :
  clock_period:int ->
  ?clock_periods:(string * int) list ->
  ?abstracted_signals:string list ->
  ?rename:(string -> string) ->
  Property.t list ->
  report list

(** The abstracted properties that survived (in order). *)
val surviving : report list -> Property.t list

(** True when the formula contains a [next_eps^tau] operator inside an
    [until]/[release] (or under [eventually]) — such a property can
    only be discharged when the TLM model produces transactions on the
    full reference clock grid within the monitored window, because the
    iterating operator re-anchors the timed operand at every event.
    On minimal approximately-timed models (one write + one read per
    operation) these properties are not evaluable under the strict
    Def. III.3 semantics; see the "q2 gap" discussion in DESIGN.md. *)
val needs_dense_trace : Ltl.t -> bool

(** Human-readable multi-line report. *)
val pp_report : Format.formatter -> report -> unit

(** One summary line per report: name, status, classification. *)
val pp_summary : Format.formatter -> report list -> unit
