open Tabv_psl

exception Not_an_rtl_property of Property.t

type report = {
  input : Property.t;
  clock_period : int;
  abstracted_signals : string list;
  simple_subset_violations : Simple_subset.violation list;
  nnf : Ltl.t;
  signal_abstraction : Signal_abstraction.result;
  pushed : Ltl.t option;
  substitutions : Next_substitution.subst list;
  output : Property.t option;
  requires_review : bool;
}

let abstract ~clock_period ?(clock_periods = []) ?(abstracted_signals = [])
    ?(rename = fun n -> n) p =
  if not (Property.is_rtl p) then raise (Not_an_rtl_property p);
  (* Algorithm III.1's [c] is the period of the clock the property
     samples. *)
  let clock_period =
    match Context.clock_name p.Property.context with
    | None -> clock_period
    | Some name ->
      (match List.assoc_opt name clock_periods with
       | Some period -> period
       | None ->
         invalid_arg
           (Printf.sprintf
              "Methodology.abstract: no period given for clock %S (property %s)"
              name p.Property.name))
  in
  if clock_period <= 0 then
    invalid_arg "Methodology.abstract: clock_period must be positive";
  let violations = Simple_subset.check p.Property.formula in
  let nnf = Nnf.convert (Ltl.demote_booleans p.Property.formula) in
  let sig_result = Signal_abstraction.run ~removed:abstracted_signals nnf in
  let pushed, substitutions, output =
    match sig_result.Signal_abstraction.formula with
    | None -> (None, [], None)
    | Some survivor ->
      let pushed = Push_ahead.run survivor in
      let substituted, substitutions = Next_substitution.run ~clock_period pushed in
      let context = Context_map.run p.Property.context in
      let output =
        Property.make ~name:(rename p.Property.name) ~context substituted
      in
      (Some pushed, substitutions, Some output)
  in
  let requires_review =
    match sig_result.Signal_abstraction.classification with
    | Signal_abstraction.Unchanged | Signal_abstraction.Weakened -> false
    | Signal_abstraction.Needs_review -> true
  in
  {
    input = p;
    clock_period;
    abstracted_signals;
    simple_subset_violations = violations;
    nnf;
    signal_abstraction = sig_result;
    pushed;
    substitutions;
    output;
    requires_review;
  }

let abstract_all ~clock_period ?clock_periods ?abstracted_signals ?rename ps =
  List.map (abstract ~clock_period ?clock_periods ?abstracted_signals ?rename) ps

let surviving reports =
  List.filter_map (fun r -> r.output) reports

let needs_dense_trace formula =
  let rec has_next_event = function
    | Ltl.Atom _ -> false
    | Ltl.Next_event _ -> true
    | Ltl.Not p | Ltl.Next_n (_, p) | Ltl.Always p | Ltl.Eventually p ->
      has_next_event p
    | Ltl.And (p, q) | Ltl.Or (p, q) | Ltl.Implies (p, q)
    | Ltl.Until (p, q) | Ltl.Release (p, q) ->
      has_next_event p || has_next_event q
  in
  let rec walk = function
    | Ltl.Atom _ -> false
    | Ltl.Not p | Ltl.Next_n (_, p) | Ltl.Next_event (_, p) | Ltl.Always p -> walk p
    | Ltl.And (p, q) | Ltl.Or (p, q) | Ltl.Implies (p, q) -> walk p || walk q
    | Ltl.Until (p, q) | Ltl.Release (p, q) ->
      has_next_event p || has_next_event q || walk p || walk q
    | Ltl.Eventually p -> has_next_event p || walk p
  in
  walk formula

let pp_report ppf r =
  let pp_opt_formula ppf = function
    | None -> Format.pp_print_string ppf "(deleted)"
    | Some f -> Ltl.pp ppf f
  in
  Format.fprintf ppf "@[<v>property %s@," r.input.Property.name;
  Format.fprintf ppf "  input:         %a@," Property.pp r.input;
  Format.fprintf ppf "  clock period:  %dns@," r.clock_period;
  if r.abstracted_signals <> [] then
    Format.fprintf ppf "  abstracted:    %s@,"
      (String.concat ", " r.abstracted_signals);
  List.iter
    (fun v ->
      Format.fprintf ppf "  simple-subset warning: %a@," Simple_subset.pp_violation v)
    r.simple_subset_violations;
  Format.fprintf ppf "  nnf:           %a@," Ltl.pp r.nnf;
  List.iter
    (fun rule ->
      Format.fprintf ppf "  fig.4 rule:    %a@," Signal_abstraction.pp_applied_rule rule)
    r.signal_abstraction.Signal_abstraction.applied;
  Format.fprintf ppf "  after fig.4:   %a (%a)@," pp_opt_formula
    r.signal_abstraction.Signal_abstraction.formula
    Signal_abstraction.pp_classification
    r.signal_abstraction.Signal_abstraction.classification;
  Format.fprintf ppf "  pushed ahead:  %a@," pp_opt_formula r.pushed;
  List.iter
    (fun s ->
      Format.fprintf ppf "  alg.III.1:     next[%d] ~> nexte[%d,%d]@,"
        s.Next_substitution.cycles s.Next_substitution.tau s.Next_substitution.eps)
    r.substitutions;
  (match r.output with
   | None -> Format.fprintf ppf "  output:        (deleted)"
   | Some q -> Format.fprintf ppf "  output:        %a" Property.pp q);
  if r.requires_review then Format.fprintf ppf "@,  ** requires human review **";
  Format.fprintf ppf "@]"

let pp_summary ppf reports =
  let pp_line ppf r =
    let status =
      match r.output with
      | None -> "deleted"
      | Some _ when r.requires_review -> "abstracted (review)"
      | Some _ -> "abstracted"
    in
    Format.fprintf ppf "%-12s %-20s %d substitution(s)" r.input.Property.name
      status (List.length r.substitutions)
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_line)
    reports
