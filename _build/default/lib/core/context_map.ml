open Tabv_psl

let map_clock = function
  | Context.Base_clock | Context.Edge _ | Context.Named_edge _ -> Context.Base_trans
  | Context.Edge_and (_, gate) | Context.Named_edge_and (_, _, gate) ->
    Context.Trans_and gate

let run = function
  | Context.Clock c -> Context.Transaction (map_clock c)
  | Context.Transaction _ as t -> t
