open Tabv_psl

type effect_kind =
  | Weakening
  | Strengthening
  | Review

type applied_rule = {
  rule : string;
  kind : effect_kind;
}

type classification =
  | Unchanged
  | Weakened
  | Needs_review

type result = {
  formula : Ltl.t option;
  applied : applied_rule list;
  classification : classification;
}

exception Not_in_nnf of Ltl.t

(* Outcome of abstracting a subformula: deleted ("0" in Fig. 4) or
   kept (possibly rewritten). *)
type outcome =
  | Deleted
  | Kept of Ltl.t

let run ~removed t =
  if not (Ltl.is_nnf t) then raise (Not_in_nnf t);
  let applied = ref [] in
  let record rule kind = applied := { rule; kind } :: !applied in
  let deleted_atom e = Expr.mentions_any e removed in
  let rec abs t =
    match t with
    | Ltl.Atom e -> if deleted_atom e then Deleted else Kept t
    | Ltl.Not (Ltl.Atom e) -> if deleted_atom e then Deleted else Kept t
    | Ltl.Not _ | Ltl.Implies _ -> raise (Not_in_nnf t)
    | Ltl.And (p, q) ->
      let op = abs p in
      let oq = abs q in
      (match op, oq with
       | Deleted, Deleted -> Deleted
       | Kept p', Deleted ->
         record "p && 0 ~> p" Weakening;
         Kept p'
       | Deleted, Kept q' ->
         record "0 && p ~> p" Weakening;
         Kept q'
       | Kept p', Kept q' -> Kept (Ltl.And (p', q')))
    | Ltl.Or (p, q) ->
      let op = abs p in
      let oq = abs q in
      (match op, oq with
       | Deleted, Deleted -> Deleted
       | Kept p', Deleted ->
         record "p || 0 ~> p" Strengthening;
         Kept p'
       | Deleted, Kept q' ->
         record "0 || p ~> p" Strengthening;
         Kept q'
       | Kept p', Kept q' -> Kept (Ltl.Or (p', q')))
    | Ltl.Until (p, q) ->
      let op = abs p in
      let oq = abs q in
      (match op, oq with
       | Deleted, Deleted -> Deleted
       | Kept p', Deleted ->
         record "p until 0 ~> p" Review;
         Kept p'
       | Deleted, Kept q' ->
         record "0 until p ~> p" Review;
         Kept q'
       | Kept p', Kept q' -> Kept (Ltl.Until (p', q')))
    | Ltl.Release (p, q) ->
      let op = abs p in
      let oq = abs q in
      (match op, oq with
       | Deleted, Deleted -> Deleted
       | Kept _, Deleted ->
         record "p release 0 ~> 0" Review;
         Deleted
       | Deleted, Kept q' ->
         record "0 release p ~> p" Review;
         Kept q'
       | Kept p', Kept q' -> Kept (Ltl.Release (p', q')))
    | Ltl.Next_n (n, p) ->
      (match abs p with
       | Deleted -> Deleted  (* next(a_s) ~> 0: plain propagation *)
       | Kept p' -> Kept (Ltl.next_n n p'))
    | Ltl.Next_event (ne, p) ->
      (match abs p with
       | Deleted -> Deleted
       | Kept p' -> Kept (Ltl.Next_event (ne, p')))
    | Ltl.Always p ->
      (match abs p with
       | Deleted -> Deleted
       | Kept p' -> Kept (Ltl.Always p'))
    | Ltl.Eventually p ->
      (match abs p with
       | Deleted -> Deleted
       | Kept p' -> Kept (Ltl.Eventually p'))
  in
  let outcome = abs t in
  let applied = List.rev !applied in
  let classification =
    if applied = [] && outcome <> Deleted then Unchanged
    else if List.for_all (fun r -> r.kind = Weakening) applied && outcome <> Deleted
    then Weakened
    else Needs_review
  in
  let formula =
    match outcome with
    | Deleted -> None
    | Kept f -> Some f
  in
  { formula; applied; classification }

let pp_effect ppf = function
  | Weakening -> Format.pp_print_string ppf "weakening"
  | Strengthening -> Format.pp_print_string ppf "strengthening"
  | Review -> Format.pp_print_string ppf "review"

let pp_applied_rule ppf r = Format.fprintf ppf "%s [%a]" r.rule pp_effect r.kind

let pp_classification ppf = function
  | Unchanged -> Format.pp_print_string ppf "unchanged"
  | Weakened -> Format.pp_print_string ppf "weakened (logical consequence)"
  | Needs_review -> Format.pp_print_string ppf "needs review"
