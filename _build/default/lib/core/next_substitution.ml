open Tabv_psl

exception Not_pushed of Ltl.t

type subst = {
  tau : int;
  cycles : int;
  eps : int;
}

let run ~clock_period t =
  if clock_period <= 0 then
    invalid_arg "Next_substitution.run: clock_period must be positive";
  let counter = ref 0 in
  let substs = ref [] in
  let rec go t =
    match t with
    | Ltl.Atom _ | Ltl.Not (Ltl.Atom _) -> t
    | Ltl.Not p -> Ltl.Not (go p)
    | Ltl.Implies (p, q) ->
      let p' = go p in
      let q' = go q in
      Ltl.Implies (p', q')
    | Ltl.Next_n (n, ((Ltl.Atom _ | Ltl.Not (Ltl.Atom _)) as a)) ->
      incr counter;
      let s = { tau = !counter; cycles = n; eps = n * clock_period } in
      substs := s :: !substs;
      Ltl.Next_event ({ Ltl.tau = s.tau; eps = s.eps }, a)
    | Ltl.Next_n (_, _) -> raise (Not_pushed t)
    | Ltl.Next_event (ne, p) -> Ltl.Next_event (ne, go p)
    | Ltl.And (p, q) ->
      let p' = go p in
      let q' = go q in
      Ltl.And (p', q')
    | Ltl.Or (p, q) ->
      let p' = go p in
      let q' = go q in
      Ltl.Or (p', q')
    | Ltl.Until (p, q) ->
      let p' = go p in
      let q' = go q in
      Ltl.Until (p', q')
    | Ltl.Release (p, q) ->
      let p' = go p in
      let q' = go q in
      Ltl.Release (p', q')
    | Ltl.Always p -> Ltl.Always (go p)
    | Ltl.Eventually p -> Ltl.Eventually (go p)
  in
  let t' = go t in
  (t', List.rev !substs)
