open Tabv_psl

(** The ColorConv RTL property set (12 properties, as in the paper's
    evaluation): latency, pipeline-occupancy chaining on the
    stage-valid flags v1..v7 (removed at TLM-AT), and output range
    invariants. *)

val all : Property.t list
val abstracted_signals : string list
val take : int -> Property.t list
val abstraction_reports : unit -> Tabv_core.Methodology.report list
val tlm_all : unit -> Property.t list
val tlm_auto_safe : unit -> Property.t list

(** Post-review set: the auto-safe properties plus manual refinements
    of the intents lost with the stage-valid signals (black pixels get
    neutral chroma at the output instant; every accepted pixel yields
    an in-range luma exactly one latency later). *)
val tlm_reviewed : unit -> Property.t list
