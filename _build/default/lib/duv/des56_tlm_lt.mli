open Tabv_sim

(** DES56 TLM loosely-timed model.

    The operation completes {e within the write transaction}: the
    result is available immediately and no simulation time passes.
    The model preserves the IP function but {e not} its timing — it is
    deliberately not timing equivalent to the RTL implementation
    (Def. III.1 fails on [rdy]/[out]).

    The methodology's guarantee (Theorem III.2) is conditioned on
    timing equivalence, so the abstracted {e timed} properties must
    fail here while purely boolean invariants still hold: checking
    them documents precisely which coding styles the reuse flow
    covers.  See `test/test_duv_models.ml` and EXPERIMENTS.md. *)

type t

val create : Kernel.t -> t
val target : t -> Tlm.Target.t
val observables : t -> Des56_iface.observables
val lookup : t -> string -> Tabv_psl.Expr.value option
val completed : t -> int
