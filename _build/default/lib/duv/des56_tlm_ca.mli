open Tabv_sim

(** DES56 TLM cycle-accurate model.

    The I/O protocol is preserved: the initiator exchanges exactly one
    {!Des56_iface.Frame} transaction per clock period (10 ns), carrying
    the full input bundle and collecting the output bundle.  The frame
    first returns the pre-edge output values, then advances the
    internal state by one cycle — byte-for-byte the observable
    behaviour of {!Des56_rtl}, making the two models timing equivalent
    (Def. III.1).

    Internally the result is computed once per operation with the pure
    {!Des} functions and released after a 17-cycle countdown, which is
    what makes the CA model faster than the RTL one. *)

type t

val create : Kernel.t -> t
val target : t -> Tlm.Target.t

(** Mirror of the observable interface, updated at each frame. *)
val observables : t -> Des56_iface.observables

val lookup : t -> string -> Tabv_psl.Expr.value option
val completed : t -> int
