(** Deterministic pseudo-random workload generators. *)

(** DES56 operations.  [zero_fraction] of the items carry
    [indata = 0] so the p1 antecedent fires (default 0.2);
    [decrypt_fraction] selects decryption (default 0.3). *)
val des56 :
  seed:int ->
  count:int ->
  ?zero_fraction:float ->
  ?decrypt_fraction:float ->
  unit ->
  Des56_iface.op list

(** ColorConv pixel bursts: a list of bursts, each a run of pixels
    streamed back-to-back; [black_fraction] of the pixels are black so
    the c12 antecedent fires (default 0.1). *)
val colorconv :
  seed:int ->
  count:int ->
  ?burst:int ->
  ?black_fraction:float ->
  unit ->
  Colorconv.pixel list list

(** MemCtrl operations: mixed writes/reads over the 256-word space;
    [write_fraction] defaults to 0.5.  Reads are biased towards
    previously written addresses so the data path is exercised. *)
val memctrl :
  seed:int -> count:int -> ?write_fraction:float -> unit -> Memctrl_iface.op list
