type pixel = {
  r : int;
  g : int;
  b : int;
}

type ycbcr = {
  y : int;
  cb : int;
  cr : int;
}

(* The pipeline computes the three dot products incrementally: one
   multiplier column per stage (stages 2-4), then accumulation,
   rounding, shifting and offsetting (stages 5-8). *)
type stage_state = {
  pixel : pixel;
  mutable ty : int;
  mutable tcb : int;
  mutable tcr : int;
}

let stages = 8

let check_range { r; g; b } =
  let ok c = c >= 0 && c <= 255 in
  if not (ok r && ok g && ok b) then
    invalid_arg (Printf.sprintf "Colorconv: component out of range (%d,%d,%d)" r g b)

let stage_in pixel =
  check_range pixel;
  { pixel; ty = 0; tcb = 0; tcr = 0 }

let stage i previous =
  let state = { previous with ty = previous.ty } in
  let { r; g; b } = state.pixel in
  (match i with
   | 1 ->
     (* R column of the coefficient matrix. *)
     state.ty <- 66 * r;
     state.tcb <- -38 * r;
     state.tcr <- 112 * r
   | 2 ->
     (* G column. *)
     state.ty <- state.ty + (129 * g);
     state.tcb <- state.tcb - (74 * g);
     state.tcr <- state.tcr - (94 * g)
   | 3 ->
     (* B column. *)
     state.ty <- state.ty + (25 * b);
     state.tcb <- state.tcb + (112 * b);
     state.tcr <- state.tcr - (18 * b)
   | 4 ->
     (* Rounding constant. *)
     state.ty <- state.ty + 128;
     state.tcb <- state.tcb + 128;
     state.tcr <- state.tcr + 128
   | 5 ->
     (* Arithmetic shift (truncation towards minus infinity). *)
     state.ty <- state.ty asr 8;
     state.tcb <- state.tcb asr 8;
     state.tcr <- state.tcr asr 8
   | 6 ->
     (* Offsets. *)
     state.ty <- state.ty + 16;
     state.tcb <- state.tcb + 128;
     state.tcr <- state.tcr + 128
   | 7 ->
     (* Clamp (a no-op for in-range inputs, kept as a defensive
        saturation stage as real IPs do). *)
     let clamp v = if v < 0 then 0 else if v > 255 then 255 else v in
     state.ty <- clamp state.ty;
     state.tcb <- clamp state.tcb;
     state.tcr <- clamp state.tcr
   | _ -> invalid_arg (Printf.sprintf "Colorconv.stage: no stage %d" i));
  state

let stage_out state = { y = state.ty; cb = state.tcb; cr = state.tcr }

let convert pixel =
  let state = ref (stage_in pixel) in
  for i = 1 to 7 do
    state := stage i !state
  done;
  stage_out !state

let equal_ycbcr a b = a.y = b.y && a.cb = b.cb && a.cr = b.cr

let pp_ycbcr ppf { y; cb; cr } = Format.fprintf ppf "Y=%d Cb=%d Cr=%d" y cb cr
