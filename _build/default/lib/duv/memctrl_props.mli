open Tabv_psl

(** MemCtrl RTL property set (8 properties): asymmetric write/read
    latency, handshake chaining over the abstracted [ack_next_cycle]
    flag, until-based request holding, and pulse shape. *)

val all : Property.t list
val abstracted_signals : string list
val abstraction_reports : unit -> Tabv_core.Methodology.report list
val tlm_auto_safe : unit -> Property.t list
