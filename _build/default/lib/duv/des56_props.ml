open Tabv_psl

let property name source = Parser.property_exn ~name source

(* Fig. 3 of the paper. *)
let p1 =
  property "p1" "always (!(ds && indata = 0) || next[17](out != 0)) @clk_pos"

let p2 = property "p2" "always (!ds || (next(!ds until next(rdy)))) @clk_pos"

let p3 =
  property "p3"
    "always (!ds || (next[15](rdy_next_next_cycle) && next[16](rdy_next_cycle) && next[17](rdy))) @clk_pos"

(* Additional properties in the same style. *)
let p4 = property "p4" "always (!ds || next[15](rdy_next_next_cycle)) @clk_pos"

let p5 =
  property "p5"
    "always (!rdy_next_next_cycle || (next(rdy_next_cycle) && next[2](rdy))) @clk_pos"

let p6 = property "p6" "always (!(ds && decrypt) || next[17](rdy)) @clk_pos"

let p7 = property "p7" "always (!ds || next(!rdy until rdy_next_cycle)) @clk_pos"

let p8 = property "p8" "always (!rdy || !rdy_next_cycle) @clk_pos"

let p9 = property "p9" "always (rdy -> next(!rdy)) @clk_pos"

let all = [ p1; p2; p3; p4; p5; p6; p7; p8; p9 ]

let abstracted_signals = [ "rdy_next_cycle"; "rdy_next_next_cycle" ]

let take n =
  if n < 0 || n > List.length all then invalid_arg "Des56_props.take";
  List.filteri (fun i _ -> i < n) all

let rename name = "q" ^ String.sub name 1 (String.length name - 1)

let abstraction_reports () =
  Tabv_core.Methodology.abstract_all ~clock_period:Des56_iface.clock_period
    ~abstracted_signals ~rename all

let tlm_all () = Tabv_core.Methodology.surviving (abstraction_reports ())

let tlm_auto_safe () =
  List.filter_map
    (fun report ->
      match report.Tabv_core.Methodology.output with
      | Some q
        when (not report.Tabv_core.Methodology.requires_review)
             && not (Tabv_core.Methodology.needs_dense_trace q.Property.formula) ->
        Some q
      | Some _ | None -> None)
    (abstraction_reports ())

let find_output name reports =
  match
    List.find_map
      (fun r ->
        match r.Tabv_core.Methodology.output with
        | Some q when q.Property.name = name -> Some q
        | Some _ | None -> None)
      reports
  with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Des56_props: no abstracted property %s" name)

let tlm_reviewed () =
  let reports = abstraction_reports () in
  let q7 = find_output "q7" reports in
  let q4_refined =
    property "q4r" "always (!ds || nexte[1,170](rdy)) @tb"
  in
  let q8_refined = property "q8r" "always (!rdy || !ds) @tb" in
  tlm_auto_safe () @ [ q7; q4_refined; q8_refined ]
