open Tabv_sim

(** MemCtrl TLM cycle-accurate model: one {!Memctrl_iface.Frame}
    transaction per clock period, observable-equivalent to
    {!Memctrl_rtl} (Def. III.1), so the unabstracted RTL properties
    remain checkable. *)

type t

val create : Kernel.t -> t
val target : t -> Tlm.Target.t
val observables : t -> Memctrl_iface.observables
val lookup : t -> string -> Tabv_psl.Expr.value option
val completed : t -> int
val peek : t -> int -> int
