(** The DES-56 block cipher (FIPS 46-3), implemented from scratch.

    Besides whole-block [encrypt]/[decrypt], the module exposes the
    per-round datapath pieces ([initial_permutation], [round],
    [final_swap_permutation], [round_keys]) so the RTL model can
    execute exactly one Feistel round per clock cycle, giving the
    17-cycle latency of the paper's DES56 IP (1 load + 16 rounds). *)

(** 16 round keys (48 bits each, right-aligned) derived from a 64-bit
    key (parity bits ignored, as per PC-1). *)
val round_keys : int64 -> int64 array

(** Initial permutation IP, split into the (L0, R0) halves (32 bits
    each, right-aligned). *)
val initial_permutation : int64 -> int64 * int64

(** One Feistel round: [(l', r') = (r, l lxor f (r, k))]. *)
val round : int64 * int64 -> key:int64 -> int64 * int64

(** Final swap and permutation IP^-1 applied to [(l16, r16)]. *)
val final_swap_permutation : int64 * int64 -> int64

(** The cipher function f(R, K) (32 bits). *)
val f : int64 -> key:int64 -> int64

val encrypt : key:int64 -> int64 -> int64
val decrypt : key:int64 -> int64 -> int64

(** [process ~decrypt ~key block]: convenience dispatcher. *)
val process : decrypt:bool -> key:int64 -> int64 -> int64
