lib/duv/memctrl_tlm_at.mli: Kernel Memctrl_iface Tabv_psl Tabv_sim Tlm
