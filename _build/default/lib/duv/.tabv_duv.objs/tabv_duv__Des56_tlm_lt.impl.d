lib/duv/des56_tlm_lt.ml: Des Des56_iface Tabv_sim Tlm
