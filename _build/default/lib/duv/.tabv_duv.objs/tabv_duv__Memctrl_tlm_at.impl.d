lib/duv/memctrl_tlm_at.ml: Array Kernel Memctrl_iface Option Process Tabv_sim Tlm
