lib/duv/memctrl_tlm_ca.ml: Array Memctrl_iface Tabv_sim Tlm
