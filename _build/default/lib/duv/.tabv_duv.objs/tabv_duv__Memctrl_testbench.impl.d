lib/duv/memctrl_testbench.ml: Array Clock Int64 Kernel List Memctrl_iface Memctrl_rtl Memctrl_tlm_at Memctrl_tlm_ca Process Rtl_checker Signal Tabv_checker Tabv_sim Testbench Tlm Wrapper
