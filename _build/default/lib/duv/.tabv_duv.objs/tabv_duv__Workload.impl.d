lib/duv/workload.ml: Colorconv Des56_iface Int64 List Memctrl_iface Random
