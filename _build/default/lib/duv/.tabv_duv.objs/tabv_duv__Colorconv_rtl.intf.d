lib/duv/colorconv_rtl.mli: Clock Kernel Signal Tabv_psl Tabv_sim
