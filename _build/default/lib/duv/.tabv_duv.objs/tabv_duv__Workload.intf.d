lib/duv/workload.mli: Colorconv Des56_iface Memctrl_iface
