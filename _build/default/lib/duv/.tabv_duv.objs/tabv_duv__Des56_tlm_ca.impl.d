lib/duv/des56_tlm_ca.ml: Des Des56_iface Tabv_sim Tlm
