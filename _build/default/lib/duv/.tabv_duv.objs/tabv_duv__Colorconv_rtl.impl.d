lib/duv/colorconv_rtl.ml: Array Clock Colorconv Duv_util List Printf Process Signal Tabv_sim
