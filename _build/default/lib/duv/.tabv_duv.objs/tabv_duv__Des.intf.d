lib/duv/des.mli:
