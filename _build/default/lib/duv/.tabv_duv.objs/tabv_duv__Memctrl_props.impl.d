lib/duv/memctrl_props.ml: List Memctrl_iface Parser Property Tabv_core Tabv_psl
