lib/duv/des56_iface.ml: Duv_util Tabv_sim Tlm
