lib/duv/memctrl_iface.mli: Tabv_psl Tabv_sim Tlm
