lib/duv/memctrl_testbench.mli: Memctrl_iface Property Tabv_psl Testbench
