lib/duv/colorconv_tlm_at.mli: Colorconv_iface Kernel Tabv_psl Tabv_sim Tlm
