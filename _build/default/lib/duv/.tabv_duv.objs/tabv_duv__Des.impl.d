lib/duv/des.ml: Array Int64
