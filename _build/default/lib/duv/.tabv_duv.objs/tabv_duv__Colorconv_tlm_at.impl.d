lib/duv/colorconv_tlm_at.ml: Colorconv Colorconv_iface Kernel Process Queue Tabv_sim Tlm
