lib/duv/colorconv_props.mli: Property Tabv_core Tabv_psl
