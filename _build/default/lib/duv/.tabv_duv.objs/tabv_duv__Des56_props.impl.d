lib/duv/des56_props.ml: Des56_iface List Parser Printf Property String Tabv_core Tabv_psl
