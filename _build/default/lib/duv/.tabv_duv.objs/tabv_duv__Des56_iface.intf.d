lib/duv/des56_iface.mli: Tabv_psl Tabv_sim Tlm
