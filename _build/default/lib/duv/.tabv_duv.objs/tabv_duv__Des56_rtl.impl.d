lib/duv/des56_rtl.ml: Array Clock Des Duv_util Process Signal Tabv_sim
