lib/duv/colorconv_props.ml: Colorconv_iface List Parser Property Tabv_core Tabv_psl
