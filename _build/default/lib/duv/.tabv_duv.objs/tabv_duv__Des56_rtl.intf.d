lib/duv/des56_rtl.mli: Clock Kernel Signal Tabv_psl Tabv_sim
