lib/duv/colorconv.mli: Format
