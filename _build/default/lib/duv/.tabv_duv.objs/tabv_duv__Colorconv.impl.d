lib/duv/colorconv.ml: Format Printf
