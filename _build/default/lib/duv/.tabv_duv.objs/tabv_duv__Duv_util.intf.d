lib/duv/duv_util.mli: Tabv_psl
