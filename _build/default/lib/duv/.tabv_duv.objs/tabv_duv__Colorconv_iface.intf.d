lib/duv/colorconv_iface.mli: Colorconv Tabv_psl Tabv_sim Tlm
