lib/duv/colorconv_tlm_ca.mli: Colorconv_iface Kernel Tabv_psl Tabv_sim Tlm
