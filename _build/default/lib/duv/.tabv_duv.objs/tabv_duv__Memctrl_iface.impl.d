lib/duv/memctrl_iface.ml: Duv_util List Tabv_sim Tlm
