lib/duv/duv_util.ml: Int64 List Tabv_psl
