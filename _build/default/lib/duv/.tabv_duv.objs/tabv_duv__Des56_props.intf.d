lib/duv/des56_props.mli: Property Tabv_core Tabv_psl
