lib/duv/des56_tlm_at.ml: Des Des56_iface Kernel Process Tabv_sim Tlm
