lib/duv/memctrl_tlm_ca.mli: Kernel Memctrl_iface Tabv_psl Tabv_sim Tlm
