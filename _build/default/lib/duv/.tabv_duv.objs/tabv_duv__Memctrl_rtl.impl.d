lib/duv/memctrl_rtl.ml: Array Clock Duv_util List Memctrl_iface Process Signal Tabv_sim
