lib/duv/des56_tlm_ca.mli: Des56_iface Kernel Tabv_psl Tabv_sim Tlm
