lib/duv/memctrl_props.mli: Property Tabv_core Tabv_psl
