lib/duv/colorconv_tlm_ca.ml: Array Colorconv Colorconv_iface Tabv_sim Tlm
