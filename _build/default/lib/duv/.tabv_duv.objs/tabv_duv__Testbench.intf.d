lib/duv/testbench.mli: Colorconv Des56_iface Des56_rtl Format Monitor Property Tabv_checker Tabv_psl Trace
