lib/duv/des56_tlm_at.mli: Des56_iface Kernel Tabv_psl Tabv_sim Tlm
