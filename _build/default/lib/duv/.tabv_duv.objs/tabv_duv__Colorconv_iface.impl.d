lib/duv/colorconv_iface.ml: Array Colorconv Duv_util List Tabv_sim Tlm
