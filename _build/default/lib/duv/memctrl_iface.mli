open Tabv_sim

(** Common interface of the MemCtrl models — a third IP beyond the
    paper's two test cases, with {e asymmetric} latencies: writes
    acknowledge after {!write_latency} cycles, reads return data after
    {!read_latency} cycles.  Exercises the methodology on properties
    gated by operation kind.

    RTL interface: inputs [req], [we] (write enable), [addr] (8-bit),
    [wdata] (16-bit); outputs [ack], [rdata], and the early-warning
    flag [ack_next_cycle] (abstracted away at TLM-AT). *)

val write_latency : int  (** cycles, strobe to ack *)

val read_latency : int
val clock_period : int
val address_space : int

val signal_names : string list
val abstracted_signals : string list

type op =
  | Write of {
      addr : int;
      wdata : int;
    }
  | Read of { addr : int }

type observables = {
  mutable req : bool;
  mutable we : bool;
  mutable addr : int;
  mutable wdata : int;
  mutable ack : bool;
  mutable ack_next_cycle : bool;
  mutable rdata : int;
}

val create_observables : unit -> observables
val lookup : observables -> string -> Tabv_psl.Expr.value option
val env_of : observables -> (string * Tabv_psl.Expr.value) list

(** TLM-CA cycle frame: one transaction per clock period carrying the
    full I/O bundle. *)
type frame = {
  m_req : bool;
  m_we : bool;
  m_addr : int;
  m_wdata : int;
  mutable m_ack : bool;
  mutable m_ack_next_cycle : bool;
  mutable m_rdata : int;
}

type Tlm.ext += Frame of frame

val make_frame : ?req:bool -> ?we:bool -> ?addr:int -> ?wdata:int -> unit -> frame

(** TLM-AT exchanges. *)
type at_response = {
  mutable a_ack : bool;
  mutable a_rdata : int;
}

type Tlm.ext +=
  | At_write of {
      w_addr : int;
      w_data : int;
    }
  | At_read_req of { r_addr : int }
  | At_idle  (** [req] deassertion *)
  | At_collect of at_response  (** blocking: returns at the ack instant *)
  | At_status of at_response  (** [ack] deassertion *)
