let random_int64 state =
  let high = Random.State.int64 state Int64.max_int in
  let low = Random.State.bool state in
  if low then Int64.logor high Int64.min_int else high

let des56 ~seed ~count ?(zero_fraction = 0.2) ?(decrypt_fraction = 0.3) () =
  let state = Random.State.make [| seed; 0xDE5 |] in
  List.init count (fun _ ->
    let indata =
      if Random.State.float state 1.0 < zero_fraction then 0L else random_int64 state
    in
    {
      Des56_iface.decrypt = Random.State.float state 1.0 < decrypt_fraction;
      key = random_int64 state;
      indata;
    })

let colorconv ~seed ~count ?(burst = 8) ?(black_fraction = 0.1) () =
  if burst <= 0 then invalid_arg "Workload.colorconv: burst must be positive";
  let state = Random.State.make [| seed; 0xC01 |] in
  let pixel () =
    if Random.State.float state 1.0 < black_fraction then { Colorconv.r = 0; g = 0; b = 0 }
    else
      {
        Colorconv.r = Random.State.int state 256;
        g = Random.State.int state 256;
        b = Random.State.int state 256;
      }
  in
  let rec bursts remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let size = min remaining (1 + Random.State.int state burst) in
      let pixels = List.init size (fun _ -> pixel ()) in
      bursts (remaining - size) (pixels :: acc)
    end
  in
  bursts count []

let memctrl ~seed ~count ?(write_fraction = 0.5) () =
  let state = Random.State.make [| seed; 0x3E3 |] in
  let written = ref [] in
  List.init count (fun _ ->
    if Random.State.float state 1.0 < write_fraction || !written = [] then begin
      let addr = Random.State.int state Memctrl_iface.address_space in
      written := addr :: !written;
      Memctrl_iface.Write { addr; wdata = Random.State.int state 0x10000 }
    end
    else begin
      let candidates = !written in
      let addr =
        if Random.State.bool state then
          List.nth candidates (Random.State.int state (List.length candidates))
        else Random.State.int state Memctrl_iface.address_space
      in
      Memctrl_iface.Read { addr }
    end)
