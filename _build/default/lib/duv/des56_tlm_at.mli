open Tabv_sim

(** DES56 TLM approximately-timed model.

    The I/O protocol is abstracted: one {e write} transaction delivers
    the operation (mode, key, data) and one {e read} transaction
    returns the result.  A read issued before the operation's
    completion instant blocks (the target waits inside [b_transport])
    until [write time + 170 ns], preserving the IP latency.

    The early-warning flags [rdy_next_cycle]/[rdy_next_next_cycle] do
    not exist at this level — they are the abstracted signals the
    Fig. 4 rules remove from the properties.

    Transactions understood (via payload extensions):
    {ul
    {- [At_write]: start an operation (the [ds] instant);}
    {- [At_idle]: no-payload notification modelling the strobe
       deassertion one clock period later (keeps the model timing
       equivalent on the preserved [ds] signal);}
    {- [At_read]: collect [out]/[rdy] (blocks until ready);}
    {- [At_status]: post-completion status poll ([rdy] low again).}} *)

type t

(** [create ?latency_ns kernel] — [latency_ns] defaults to the correct
    170 ns; passing a different value models a {e wrongly abstracted}
    TLM model, whose timed properties must then fail (Theorem III.2's
    contrapositive). *)
val create : ?latency_ns:int -> Kernel.t -> t
val target : t -> Tlm.Target.t

(** Mirror of the observable (abstracted) interface as of the last
    transaction. *)
val observables : t -> Des56_iface.observables

val lookup : t -> string -> Tabv_psl.Expr.value option
val completed : t -> int
