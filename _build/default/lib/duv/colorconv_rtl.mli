open Tabv_sim

(** ColorConv RTL model: an 8-stage pipeline, one stage per clock
    cycle, able to accept one pixel per cycle.

    {v
      edge e0   : dv sampled -> stage_in, v1 written (visible e0+1)
      edge e0+k : stage k applied, v_{k+1} written     (k = 1..6)
      edge e0+7 : stage 7 + output; ovalid/y/cb/cr visible at e0+8
    v} *)

type t

val create : Kernel.t -> Clock.t -> t

(* Inputs. *)
val dv : t -> bool Signal.t
val r : t -> int Signal.t
val g : t -> int Signal.t
val b : t -> int Signal.t

(* Outputs. *)
val ovalid : t -> bool Signal.t
val y : t -> int Signal.t
val cb : t -> int Signal.t
val cr : t -> int Signal.t

(** Stage-occupancy flag signals v1..v7. *)
val valids : t -> bool Signal.t array

val lookup : t -> string -> Tabv_psl.Expr.value option
val env : t -> (string * Tabv_psl.Expr.value) list
val completed : t -> int
