open Tabv_psl

(** The DES56 RTL property set: the three published properties of
    Fig. 3 (p1, p2, p3) plus six written in the same style, for a
    total of 9 as in the paper's evaluation (Sec. V).

    Signals [rdy_next_cycle] and [rdy_next_next_cycle] are the ones
    removed by the RTL-to-TLM-AT abstraction. *)

(** p1..p9, in order. *)
val all : Property.t list

(** The published Fig. 3 trio. *)
val p1 : Property.t

val p2 : Property.t
val p3 : Property.t

(** Signals abstracted away at TLM-AT. *)
val abstracted_signals : string list

(** The first [n] properties (the paper's "1 C" and "5 C" rows). *)
val take : int -> Property.t list

(** Abstraction reports for the whole set (clock 10 ns, renames
    [pK] to [qK]). *)
val abstraction_reports : unit -> Tabv_core.Methodology.report list

(** The abstracted TLM properties that survived. *)
val tlm_all : unit -> Property.t list

(** Surviving TLM properties whose signal abstraction was a logical
    consequence or a no-op, and whose timed operators are dischargeable
    on sparse AT traces — safe for fully automatic reuse. *)
val tlm_auto_safe : unit -> Property.t list

(** The property set after the paper's "human investigation" step
    (Sec. III-B) on the review-flagged abstractions:
    {ul
    {- [q7] is accepted as produced (one period after the strobe the
       result line is still low);}
    {- [q4] and [q8] lost their protocol meaning; they are refined to
       the TLM-level intents "a strobe is answered exactly one latency
       later" and "a result delivery never coincides with a strobe";}
    {- [q5] is dropped (pure handshake chaining, meaningless once the
       protocol is abstracted);}
    {- [q2] needs full-grid transactions and is deferred to the grid
       wrapper (see DESIGN.md).}} *)
val tlm_reviewed : unit -> Property.t list
