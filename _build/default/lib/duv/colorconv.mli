(** RGB to YCbCr colour-space converter (ITU-R BT.601, 8-bit
    fixed-point), decomposed into the 8 pipeline stages of the paper's
    ColorConv IP.

    {v
      Y  =  16 + (  66 R + 129 G +  25 B + 128) >> 8
      Cb = 128 + ( -38 R -  74 G + 112 B + 128) >> 8
      Cr = 128 + ( 112 R -  94 G -  18 B + 128) >> 8
    v}

    For R, G, B in [0, 255]: Y in [16, 235], Cb/Cr in [16, 240]. *)

type pixel = {
  r : int;
  g : int;
  b : int;
}

type ycbcr = {
  y : int;
  cb : int;
  cr : int;
}

(** Intermediate pipeline payload carried between stages. *)
type stage_state

(** Whole conversion (reference function).
    @raise Invalid_argument on components outside [0, 255]. *)
val convert : pixel -> ycbcr

(** Stage 1 of the pipeline: admit a pixel. *)
val stage_in : pixel -> stage_state

(** [stage i state] applies pipeline stage [i] (1..7 after
    {!stage_in}; stage 8 is {!stage_out}).  Pure: returns a fresh
    payload, so pipeline registers can hold the input snapshot. *)
val stage : int -> stage_state -> stage_state

(** Final stage: extract the converted pixel. *)
val stage_out : stage_state -> ycbcr

(** Number of pipeline stages (8): latency in clock cycles. *)
val stages : int

val equal_ycbcr : ycbcr -> ycbcr -> bool
val pp_ycbcr : Format.formatter -> ycbcr -> unit
