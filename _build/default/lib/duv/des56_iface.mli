open Tabv_sim

(** Common interface of the DES56 models.

    The RTL I/O interface (paper Fig. 2(a)): inputs [ds] (data
    strobe), [decrypt] (mode), [key], [indata]; outputs [out], [rdy]
    and the early-warning flags [rdy_next_cycle],
    [rdy_next_next_cycle].  Latency: {!latency} clock cycles from the
    edge sampling [ds] to the edge where [rdy]/[out] are visible. *)

(** Clock cycles from strobe to result (1 load + 16 rounds). *)
val latency : int

(** Reference clock period of the RTL implementation, ns. *)
val clock_period : int

(** Signal names exposed to properties. *)
val signal_names : string list

(** One operation request. *)
type op = {
  decrypt : bool;
  key : int64;
  indata : int64;
}

(** Mutable mirror of the observable interface, sampled by TLM
    checkers and trace recorders. *)
type observables = {
  mutable ds : bool;
  mutable decrypt_obs : bool;
  mutable key_obs : int64;
  mutable indata : int64;
  mutable out : int64;
  mutable rdy : bool;
  mutable rdy_next_cycle : bool;
  mutable rdy_next_next_cycle : bool;
}

val create_observables : unit -> observables

(** Property-layer view of the mirror. *)
val lookup : observables -> string -> Tabv_psl.Expr.value option

(** Environment snapshot (for trace recording). *)
val env_of : observables -> (string * Tabv_psl.Expr.value) list

(** TLM-CA cycle frame: one transaction per clock cycle carrying the
    full I/O bundle (inputs sampled, outputs returned). *)
type frame = {
  f_ds : bool;
  f_decrypt : bool;
  f_key : int64;
  f_indata : int64;
  mutable f_out : int64;
  mutable f_rdy : bool;
  mutable f_rdy_next_cycle : bool;
  mutable f_rdy_next_next_cycle : bool;
}

type Tlm.ext += Frame of frame

val make_frame : ?ds:bool -> ?decrypt:bool -> ?key:int64 -> ?indata:int64 -> unit -> frame

(** TLM-AT operation exchange: the write carries the request, the read
    collects the result. *)
type at_request = {
  a_decrypt : bool;
  a_key : int64;
  a_indata : int64;
}

type at_response = {
  mutable a_out : int64;
  mutable a_rdy : bool;
}

type Tlm.ext +=
  | At_write of at_request
  | At_idle  (** the strobe-deassertion instant (ds falls) *)
  | At_read of at_response
  | At_status of at_response  (** the rdy-deassertion instant *)
