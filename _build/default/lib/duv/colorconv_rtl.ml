open Tabv_sim

(* The pipeline boundary registers are kernel signals: each clock edge
   reads the previous boundary's (pre-edge) payload and schedules the
   staged payload into the next boundary, exactly like an RTL register
   chain. *)
type t = {
  dv : bool Signal.t;
  r : int Signal.t;
  g : int Signal.t;
  b : int Signal.t;
  ovalid : bool Signal.t;
  y : int Signal.t;
  cb : int Signal.t;
  cr : int Signal.t;
  valids : bool Signal.t array;
  pipe : Colorconv.stage_state option Signal.t array;  (* boundary k: after stage k *)
  mutable completed : int;
}

let create kernel clock =
  let t =
    {
      dv = Signal.create kernel ~name:"dv" false;
      r = Signal.create kernel ~name:"r" 0;
      g = Signal.create kernel ~name:"g" 0;
      b = Signal.create kernel ~name:"b" 0;
      ovalid = Signal.create kernel ~name:"ovalid" false;
      y = Signal.create kernel ~name:"y" 0;
      cb = Signal.create kernel ~name:"cb" 0;
      cr = Signal.create kernel ~name:"cr" 0;
      valids =
        Array.init 7 (fun i -> Signal.create kernel ~name:(Printf.sprintf "v%d" (i + 1)) false);
      pipe =
        Array.init 7 (fun i ->
          Signal.create kernel ~name:(Printf.sprintf "pipe%d" i) None);
      completed = 0;
    }
  in
  let on_posedge () =
    (* Final stage and output registers, from the pre-edge boundary 6. *)
    (match Signal.read t.pipe.(6) with
     | Some state ->
       let { Colorconv.y; cb; cr } = Colorconv.stage_out (Colorconv.stage 7 state) in
       Signal.write t.y y;
       Signal.write t.cb cb;
       Signal.write t.cr cr;
       Signal.write t.ovalid true;
       t.completed <- t.completed + 1
     | None -> Signal.write t.ovalid false);
    (* Register chain: boundary k latches staged boundary k-1. *)
    for slot = 6 downto 1 do
      let staged =
        match Signal.read t.pipe.(slot - 1) with
        | Some state -> Some (Colorconv.stage slot state)
        | None -> None
      in
      Signal.write t.pipe.(slot) staged;
      Signal.write t.valids.(slot) (staged <> None)
    done;
    let admitted =
      if Signal.read t.dv then
        Some
          (Colorconv.stage_in
             { Colorconv.r = Signal.read t.r; g = Signal.read t.g; b = Signal.read t.b })
      else None
    in
    Signal.write t.pipe.(0) admitted;
    Signal.write t.valids.(0) (admitted <> None)
  in
  Process.method_process kernel ~name:"colorconv_rtl" ~initialize:false
    ~sensitivity:[ Clock.posedge clock ] on_posedge;
  t

let dv t = t.dv
let r t = t.r
let g t = t.g
let b t = t.b
let ovalid t = t.ovalid
let y t = t.y
let cb t = t.cb
let cr t = t.cr
let valids t = t.valids

let bindings t =
  [ ("dv", fun () -> Duv_util.vbool (Signal.read t.dv));
    ("r", fun () -> Duv_util.vint (Signal.read t.r));
    ("g", fun () -> Duv_util.vint (Signal.read t.g));
    ("b", fun () -> Duv_util.vint (Signal.read t.b));
    ("ovalid", fun () -> Duv_util.vbool (Signal.read t.ovalid));
    ("y", fun () -> Duv_util.vint (Signal.read t.y));
    ("cb", fun () -> Duv_util.vint (Signal.read t.cb));
    ("cr", fun () -> Duv_util.vint (Signal.read t.cr)) ]
  @ Array.to_list
      (Array.mapi
         (fun i signal ->
           (Printf.sprintf "v%d" (i + 1), fun () -> Duv_util.vbool (Signal.read signal)))
         t.valids)

let lookup t = Duv_util.lookup_of (bindings t)
let env t = List.map (fun (name, thunk) -> (name, thunk ())) (bindings t)
let completed t = t.completed
