let int_of_data v =
  if v = 0L then 0
  else
    let truncated = Int64.to_int v in
    if truncated = 0 then 1 else truncated

let lookup_of bindings name =
  match List.assoc_opt name bindings with
  | Some thunk -> Some (thunk ())
  | None -> None

let vbool b = Tabv_psl.Expr.VBool b
let vint n = Tabv_psl.Expr.VInt n
let vdata v = Tabv_psl.Expr.VInt (int_of_data v)
