open Tabv_sim

(** ColorConv TLM cycle-accurate model: one {!Colorconv_iface.Frame}
    transaction per clock period, observable-equivalent to
    {!Colorconv_rtl} (pixels converted in one shot at admission and
    released through an 8-slot valid shift register). *)

type t

val create : Kernel.t -> t
val target : t -> Tlm.Target.t
val observables : t -> Colorconv_iface.observables
val lookup : t -> string -> Tabv_psl.Expr.value option
val completed : t -> int
