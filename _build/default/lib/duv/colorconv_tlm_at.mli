open Tabv_sim

(** ColorConv TLM approximately-timed model.

    One write transaction per pixel and one read per converted pixel;
    a read issued before the pixel's completion instant blocks until
    [write time + 80 ns].  Stage-valid flags v1..v7 do not exist at
    this level (the abstracted signals).  Pixels may be streamed
    back-to-back: the model keeps a FIFO of in-flight operations. *)

type t

val create : Kernel.t -> t
val target : t -> Tlm.Target.t
val observables : t -> Colorconv_iface.observables
val lookup : t -> string -> Tabv_psl.Expr.value option
val completed : t -> int
