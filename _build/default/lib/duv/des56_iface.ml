open Tabv_sim

let latency = 17
let clock_period = 10

let signal_names =
  [ "ds"; "decrypt"; "key"; "indata"; "out"; "rdy"; "rdy_next_cycle";
    "rdy_next_next_cycle" ]

type op = {
  decrypt : bool;
  key : int64;
  indata : int64;
}

type observables = {
  mutable ds : bool;
  mutable decrypt_obs : bool;
  mutable key_obs : int64;
  mutable indata : int64;
  mutable out : int64;
  mutable rdy : bool;
  mutable rdy_next_cycle : bool;
  mutable rdy_next_next_cycle : bool;
}

let create_observables () =
  {
    ds = false;
    decrypt_obs = false;
    key_obs = 0L;
    indata = 0L;
    out = 0L;
    rdy = false;
    rdy_next_cycle = false;
    rdy_next_next_cycle = false;
  }

let lookup obs =
  Duv_util.lookup_of
    [ ("ds", fun () -> Duv_util.vbool obs.ds);
      ("decrypt", fun () -> Duv_util.vbool obs.decrypt_obs);
      ("key", fun () -> Duv_util.vdata obs.key_obs);
      ("indata", fun () -> Duv_util.vdata obs.indata);
      ("out", fun () -> Duv_util.vdata obs.out);
      ("rdy", fun () -> Duv_util.vbool obs.rdy);
      ("rdy_next_cycle", fun () -> Duv_util.vbool obs.rdy_next_cycle);
      ("rdy_next_next_cycle", fun () -> Duv_util.vbool obs.rdy_next_next_cycle) ]

let env_of obs =
  [ ("ds", Duv_util.vbool obs.ds);
    ("decrypt", Duv_util.vbool obs.decrypt_obs);
    ("key", Duv_util.vdata obs.key_obs);
    ("indata", Duv_util.vdata obs.indata);
    ("out", Duv_util.vdata obs.out);
    ("rdy", Duv_util.vbool obs.rdy);
    ("rdy_next_cycle", Duv_util.vbool obs.rdy_next_cycle);
    ("rdy_next_next_cycle", Duv_util.vbool obs.rdy_next_next_cycle) ]

type frame = {
  f_ds : bool;
  f_decrypt : bool;
  f_key : int64;
  f_indata : int64;
  mutable f_out : int64;
  mutable f_rdy : bool;
  mutable f_rdy_next_cycle : bool;
  mutable f_rdy_next_next_cycle : bool;
}

type Tlm.ext += Frame of frame

let make_frame ?(ds = false) ?(decrypt = false) ?(key = 0L) ?(indata = 0L) () =
  {
    f_ds = ds;
    f_decrypt = decrypt;
    f_key = key;
    f_indata = indata;
    f_out = 0L;
    f_rdy = false;
    f_rdy_next_cycle = false;
    f_rdy_next_next_cycle = false;
  }

type at_request = {
  a_decrypt : bool;
  a_key : int64;
  a_indata : int64;
}

type at_response = {
  mutable a_out : int64;
  mutable a_rdy : bool;
}

type Tlm.ext +=
  | At_write of at_request
  | At_idle
  | At_read of at_response
  | At_status of at_response
