(** Helpers shared by the DUV models. *)

(** Map a 64-bit data word to the integer used by the property layer.

    [Expr] values carry OCaml [int]s (63-bit); the properties only test
    data words for equality against small constants (e.g.
    [indata = 0]), so the mapping preserves exactly the property
    [int_of_data v = 0 <=> v = 0L] (a plain [Int64.to_int] would map
    [0x8000000000000000L] to [0]). *)
val int_of_data : int64 -> int

(** Build a lookup function from an association list of thunks, for
    observable environments backed by mutable state. *)
val lookup_of : (string * (unit -> Tabv_psl.Expr.value)) list -> string -> Tabv_psl.Expr.value option

val vbool : bool -> Tabv_psl.Expr.value
val vint : int -> Tabv_psl.Expr.value
val vdata : int64 -> Tabv_psl.Expr.value
