open Tabv_sim

let latency = Colorconv.stages
let clock_period = 10

let valid_names = [ "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7" ]

let signal_names =
  [ "dv"; "r"; "g"; "b"; "ovalid"; "y"; "cb"; "cr" ] @ valid_names

let abstracted_signals = valid_names

type observables = {
  mutable dv : bool;
  mutable r : int;
  mutable g : int;
  mutable b : int;
  mutable ovalid : bool;
  mutable y : int;
  mutable cb : int;
  mutable cr : int;
  mutable valids : bool array;
}

let create_observables () =
  {
    dv = false;
    r = 0;
    g = 0;
    b = 0;
    ovalid = false;
    y = 0;
    cb = 0;
    cr = 0;
    valids = Array.make 7 false;
  }

let bindings obs =
  [ ("dv", fun () -> Duv_util.vbool obs.dv);
    ("r", fun () -> Duv_util.vint obs.r);
    ("g", fun () -> Duv_util.vint obs.g);
    ("b", fun () -> Duv_util.vint obs.b);
    ("ovalid", fun () -> Duv_util.vbool obs.ovalid);
    ("y", fun () -> Duv_util.vint obs.y);
    ("cb", fun () -> Duv_util.vint obs.cb);
    ("cr", fun () -> Duv_util.vint obs.cr) ]
  @ List.mapi (fun i name -> (name, fun () -> Duv_util.vbool obs.valids.(i))) valid_names

let lookup obs = Duv_util.lookup_of (bindings obs)

let env_of obs = List.map (fun (name, thunk) -> (name, thunk ())) (bindings obs)

type frame = {
  c_dv : bool;
  c_r : int;
  c_g : int;
  c_b : int;
  mutable c_ovalid : bool;
  mutable c_y : int;
  mutable c_cb : int;
  mutable c_cr : int;
  mutable c_valids : bool array;
}

type Tlm.ext += Frame of frame

let make_frame ?(dv = false) ?(r = 0) ?(g = 0) ?(b = 0) () =
  {
    c_dv = dv;
    c_r = r;
    c_g = g;
    c_b = b;
    c_ovalid = false;
    c_y = 0;
    c_cb = 0;
    c_cr = 0;
    c_valids = Array.make 7 false;
  }

type at_response = {
  mutable a_valid : bool;
  mutable a_y : int;
  mutable a_cb : int;
  mutable a_cr : int;
}

type Tlm.ext +=
  | At_write of Colorconv.pixel
  | At_idle
  | At_read of at_response
  | At_status of at_response
