open Tabv_psl

let property name source = Parser.property_exn ~name source

let c1 = property "c1" "always (!dv || next[8](ovalid)) @clk_pos"
let c2 = property "c2" "always (!dv || next(v1)) @clk_pos"
let c3 = property "c3" "always (!v1 || next(v2)) @clk_pos"
let c4 = property "c4" "always (!v2 || next(v3)) @clk_pos"
let c5 = property "c5" "always (!v3 || next(v4)) @clk_pos"
let c6 = property "c6" "always (!v4 || next(v5)) @clk_pos"
let c7 = property "c7" "always (!v5 || next(v6)) @clk_pos"
let c8 = property "c8" "always (!v6 || next(v7)) @clk_pos"
let c9 = property "c9" "always (!v7 || next(ovalid)) @clk_pos"
let c10 = property "c10" "always (!ovalid || (y >= 16 && y <= 235)) @clk_pos"

let c11 =
  property "c11"
    "always (!ovalid || (cb >= 16 && cb <= 240 && cr >= 16 && cr <= 240)) @clk_pos"

let c12 =
  property "c12"
    "always (!(dv && r = 0 && g = 0 && b = 0) || next[8](y = 16)) @clk_pos"

let all = [ c1; c2; c3; c4; c5; c6; c7; c8; c9; c10; c11; c12 ]

let abstracted_signals = Colorconv_iface.abstracted_signals

let take n =
  if n < 0 || n > List.length all then invalid_arg "Colorconv_props.take";
  List.filteri (fun i _ -> i < n) all

let rename name = "q" ^ name

let abstraction_reports () =
  Tabv_core.Methodology.abstract_all ~clock_period:Colorconv_iface.clock_period
    ~abstracted_signals ~rename all

let tlm_all () = Tabv_core.Methodology.surviving (abstraction_reports ())

let tlm_auto_safe () =
  List.filter_map
    (fun report ->
      match report.Tabv_core.Methodology.output with
      | Some q
        when (not report.Tabv_core.Methodology.requires_review)
             && not (Tabv_core.Methodology.needs_dense_trace q.Property.formula) ->
        Some q
      | Some _ | None -> None)
    (abstraction_reports ())

let tlm_reviewed () =
  let qc2_refined =
    property "qc2r"
      "always (!(dv && r = 0 && g = 0 && b = 0) || nexte[1,80](cb = 128)) @tb"
  in
  let qc9_refined =
    property "qc9r" "always (!dv || nexte[1,80](y >= 16 && y <= 235)) @tb"
  in
  tlm_auto_safe () @ [ qc2_refined; qc9_refined ]
