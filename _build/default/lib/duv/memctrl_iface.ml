open Tabv_sim

let write_latency = 2
let read_latency = 3
let clock_period = 10
let address_space = 256

let signal_names = [ "req"; "we"; "addr"; "wdata"; "ack"; "ack_next_cycle"; "rdata" ]
let abstracted_signals = [ "ack_next_cycle" ]

type op =
  | Write of {
      addr : int;
      wdata : int;
    }
  | Read of { addr : int }

type observables = {
  mutable req : bool;
  mutable we : bool;
  mutable addr : int;
  mutable wdata : int;
  mutable ack : bool;
  mutable ack_next_cycle : bool;
  mutable rdata : int;
}

let create_observables () =
  { req = false; we = false; addr = 0; wdata = 0; ack = false;
    ack_next_cycle = false; rdata = 0 }

let bindings obs =
  [ ("req", fun () -> Duv_util.vbool obs.req);
    ("we", fun () -> Duv_util.vbool obs.we);
    ("addr", fun () -> Duv_util.vint obs.addr);
    ("wdata", fun () -> Duv_util.vint obs.wdata);
    ("ack", fun () -> Duv_util.vbool obs.ack);
    ("ack_next_cycle", fun () -> Duv_util.vbool obs.ack_next_cycle);
    ("rdata", fun () -> Duv_util.vint obs.rdata) ]

let lookup obs = Duv_util.lookup_of (bindings obs)
let env_of obs = List.map (fun (name, thunk) -> (name, thunk ())) (bindings obs)

type frame = {
  m_req : bool;
  m_we : bool;
  m_addr : int;
  m_wdata : int;
  mutable m_ack : bool;
  mutable m_ack_next_cycle : bool;
  mutable m_rdata : int;
}

type Tlm.ext += Frame of frame

let make_frame ?(req = false) ?(we = false) ?(addr = 0) ?(wdata = 0) () =
  { m_req = req; m_we = we; m_addr = addr; m_wdata = wdata; m_ack = false;
    m_ack_next_cycle = false; m_rdata = 0 }

type at_response = {
  mutable a_ack : bool;
  mutable a_rdata : int;
}

type Tlm.ext +=
  | At_write of {
      w_addr : int;
      w_data : int;
    }
  | At_read_req of { r_addr : int }
  | At_idle
  | At_collect of at_response
  | At_status of at_response
