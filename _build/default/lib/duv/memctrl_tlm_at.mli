open Tabv_sim

(** MemCtrl TLM approximately-timed model.

    One request transaction ([At_write] / [At_read_req]) starts an
    operation; a blocking [At_collect] returns at the acknowledge
    instant (request time + 20 ns for writes, + 30 ns for reads).
    The [ack_next_cycle] early-warning flag is abstracted away. *)

type t

(** [write_latency_ns]/[read_latency_ns] default to the correct 20/30;
    other values model a wrongly abstracted TLM model. *)
val create : ?write_latency_ns:int -> ?read_latency_ns:int -> Kernel.t -> t

val target : t -> Tlm.Target.t
val observables : t -> Memctrl_iface.observables
val lookup : t -> string -> Tabv_psl.Expr.value option
val completed : t -> int
val peek : t -> int -> int
