open Tabv_sim

(** MemCtrl RTL model: a 256 x 16-bit memory behind a req/ack
    interface.

    {v
      edge e0          : req sampled -> operation captured
      writes           : ack_next_cycle written at e0+1 (visible e0+2? no:
                         visible e0+2-1) — precisely:
                         ack_next_cycle visible at e0+1, ack at e0+2
      reads            : ack_next_cycle visible at e0+2, ack/rdata at e0+3
    v}

    While busy, further requests are ignored. *)

type t

val create : Kernel.t -> Clock.t -> t

val req : t -> bool Signal.t
val we : t -> bool Signal.t
val addr : t -> int Signal.t
val wdata : t -> int Signal.t
val ack : t -> bool Signal.t
val ack_next_cycle : t -> bool Signal.t
val rdata : t -> int Signal.t

val lookup : t -> string -> Tabv_psl.Expr.value option
val env : t -> (string * Tabv_psl.Expr.value) list
val completed : t -> int

(** Direct view of a memory word (for test oracles). *)
val peek : t -> int -> int
