open Tabv_sim

(** Common interface of the ColorConv models (8-stage pipelined RGB to
    YCbCr converter).

    RTL interface: inputs [dv] (pixel valid), [r], [g], [b]; outputs
    [ovalid], [y], [cb], [cr]; internal pipeline occupancy flags
    [v1]..[v7] (one per stage boundary) are part of the RTL observable
    interface and are abstracted away at TLM-AT. *)

(** Pipeline latency in clock cycles. *)
val latency : int

val clock_period : int
val signal_names : string list

(** Names of the stage-valid signals removed by the RTL-to-TLM-AT
    abstraction. *)
val abstracted_signals : string list

type observables = {
  mutable dv : bool;
  mutable r : int;
  mutable g : int;
  mutable b : int;
  mutable ovalid : bool;
  mutable y : int;
  mutable cb : int;
  mutable cr : int;
  mutable valids : bool array;  (** v1..v7 *)
}

val create_observables : unit -> observables
val lookup : observables -> string -> Tabv_psl.Expr.value option
val env_of : observables -> (string * Tabv_psl.Expr.value) list

(** TLM-CA cycle frame. *)
type frame = {
  c_dv : bool;
  c_r : int;
  c_g : int;
  c_b : int;
  mutable c_ovalid : bool;
  mutable c_y : int;
  mutable c_cb : int;
  mutable c_cr : int;
  mutable c_valids : bool array;
}

type Tlm.ext += Frame of frame

val make_frame : ?dv:bool -> ?r:int -> ?g:int -> ?b:int -> unit -> frame

(** TLM-AT exchanges. *)
type at_response = {
  mutable a_valid : bool;
  mutable a_y : int;
  mutable a_cb : int;
  mutable a_cr : int;
}

type Tlm.ext +=
  | At_write of Colorconv.pixel
  | At_idle  (** [dv] deassertion *)
  | At_read of at_response
  | At_status of at_response  (** [ovalid] deassertion *)
