open Tabv_psl

let property name source = Parser.property_exn ~name source

let n1 = property "n1" "always (!(req && we) || next[2](ack)) @clk_pos"
let n2 = property "n2" "always (!(req && !we) || next[3](ack)) @clk_pos"
let n3 = property "n3" "always (!req || next(!req until ack)) @clk_pos"
let n4 = property "n4" "always (!ack || next(!ack)) @clk_pos"
let n5 = property "n5" "always (!(req && we) || next(ack_next_cycle)) @clk_pos"
let n6 = property "n6" "always (!ack_next_cycle || next(ack)) @clk_pos"
let n7 = property "n7" "always (!(req && !we) || next[2](ack_next_cycle)) @clk_pos"
let n8 = property "n8" "always (!ack || !ack_next_cycle) @clk_pos"

let all = [ n1; n2; n3; n4; n5; n6; n7; n8 ]

let abstracted_signals = Memctrl_iface.abstracted_signals

let rename name = "t" ^ name

let abstraction_reports () =
  Tabv_core.Methodology.abstract_all ~clock_period:Memctrl_iface.clock_period
    ~abstracted_signals ~rename all

let tlm_auto_safe () =
  List.filter_map
    (fun report ->
      match report.Tabv_core.Methodology.output with
      | Some q
        when (not report.Tabv_core.Methodology.requires_review)
             && not (Tabv_core.Methodology.needs_dense_trace q.Property.formula) ->
        Some q
      | Some _ | None -> None)
    (abstraction_reports ())
