open Tabv_sim

type pending =
  | No_op
  | Op of {
      is_write : bool;
      addr : int;
      wdata : int;
      mutable remaining : int;  (* cycles until ack is written *)
    }

type t = {
  req : bool Signal.t;
  we : bool Signal.t;
  addr : int Signal.t;
  wdata : int Signal.t;
  ack : bool Signal.t;
  ack_next_cycle : bool Signal.t;
  rdata : int Signal.t;
  memory : int array;
  mutable pending : pending;
  mutable completed : int;
}

let create kernel clock =
  let t =
    {
      req = Signal.create kernel ~name:"req" false;
      we = Signal.create kernel ~name:"we" false;
      addr = Signal.create kernel ~name:"addr" 0;
      wdata = Signal.create kernel ~name:"wdata" 0;
      ack = Signal.create kernel ~name:"ack" false;
      ack_next_cycle = Signal.create kernel ~name:"ack_next_cycle" false;
      rdata = Signal.create kernel ~name:"rdata" 0;
      memory = Array.make Memctrl_iface.address_space 0;
      pending = No_op;
      completed = 0;
    }
  in
  let on_posedge () =
    Signal.write t.ack false;
    Signal.write t.ack_next_cycle false;
    match t.pending with
    | Op op ->
      op.remaining <- op.remaining - 1;
      if op.remaining = 1 then Signal.write t.ack_next_cycle true
      else if op.remaining = 0 then begin
        if op.is_write then t.memory.(op.addr) <- op.wdata
        else Signal.write t.rdata t.memory.(op.addr);
        Signal.write t.ack true;
        t.completed <- t.completed + 1;
        t.pending <- No_op
      end
    | No_op ->
      if Signal.read t.req then begin
        let is_write = Signal.read t.we in
        let latency =
          if is_write then Memctrl_iface.write_latency else Memctrl_iface.read_latency
        in
        (* The capture edge counts as the first cycle: ack is visible
           exactly [latency] evaluation points after the request. *)
        let remaining = latency - 1 in
        t.pending <-
          Op
            {
              is_write;
              addr = Signal.read t.addr land (Memctrl_iface.address_space - 1);
              wdata = Signal.read t.wdata;
              remaining;
            };
        if remaining = 1 then Signal.write t.ack_next_cycle true
      end
  in
  Process.method_process kernel ~name:"memctrl_rtl" ~initialize:false
    ~sensitivity:[ Clock.posedge clock ] on_posedge;
  t

let req t = t.req
let we t = t.we
let addr t = t.addr
let wdata t = t.wdata
let ack t = t.ack
let ack_next_cycle t = t.ack_next_cycle
let rdata t = t.rdata

let bindings t =
  [ ("req", fun () -> Duv_util.vbool (Signal.read t.req));
    ("we", fun () -> Duv_util.vbool (Signal.read t.we));
    ("addr", fun () -> Duv_util.vint (Signal.read t.addr));
    ("wdata", fun () -> Duv_util.vint (Signal.read t.wdata));
    ("ack", fun () -> Duv_util.vbool (Signal.read t.ack));
    ("ack_next_cycle", fun () -> Duv_util.vbool (Signal.read t.ack_next_cycle));
    ("rdata", fun () -> Duv_util.vint (Signal.read t.rdata)) ]

let lookup t = Duv_util.lookup_of (bindings t)
let env t = List.map (fun (name, thunk) -> (name, thunk ())) (bindings t)
let completed t = t.completed
let peek t address = t.memory.(address land (Memctrl_iface.address_space - 1))
