open Tabv_psl
open Tabv_checker

(* The explicit-state (FoCs-style) checker backend must agree with the
   formula-rewriting backend on every trace, and be compact on the
   paper's properties. *)

let case name f = Alcotest.test_case name `Quick f

let run_automaton formula trace =
  let automaton = Automaton.compile ~max_states:128 formula in
  let state = ref (Automaton.initial automaton) in
  (try
     for i = 0 to Trace.length trace - 1 do
       let entry = Trace.get trace i in
       (match Automaton.verdict automaton !state with
        | Some _ -> ()  (* sink: keep state *)
        | None -> state := Automaton.step automaton !state (Trace.lookup entry))
     done
   with Automaton.Unsupported _ -> ());
  Automaton.verdict automaton !state

let run_progression formula trace =
  let ob = ref (Progression.of_formula (Nnf.convert (Ltl.demote_booleans formula))) in
  for i = 0 to Trace.length trace - 1 do
    let entry = Trace.get trace i in
    match Progression.verdict !ob with
    | Some _ -> ()
    | None -> ob := Progression.step ~time:entry.Trace.time (Trace.lookup entry) !ob
  done;
  Progression.verdict !ob

let unit_cases =
  [ case "compiles the paper's p1 body into a small automaton" (fun () ->
      let automaton, repeating =
        Automaton.compile_body Tabv_duv.Des56_props.p1.Property.formula
      in
      Alcotest.(check bool) "repeating (outer always)" true repeating;
      (* One state per remaining cycle count plus the two sinks. *)
      Alcotest.(check bool) "small" true (Automaton.state_count automaton < 40);
      Alcotest.(check bool) "more than two states" true
        (Automaton.state_count automaton > 2));
    case "whole always-property explodes, body does not" (fun () ->
      (* The monolithic automaton of always(!a || next[17](b)) would
         need a state per subset of pending obligations. *)
      match Automaton.compile Tabv_duv.Des56_props.p1.Property.formula with
      | _ -> Alcotest.fail "expected Unsupported (state blow-up)"
      | exception Automaton.Unsupported _ -> ());
    case "verdicts on a concrete run" (fun () ->
      let automaton = Automaton.compile (Parser.formula_only "always(a || next(b))") in
      let env ~a ~b =
        fun name ->
          match name with
          | "a" -> Some (Expr.VBool a)
          | "b" -> Some (Expr.VBool b)
          | _ -> None
      in
      let s0 = Automaton.initial automaton in
      Alcotest.(check (option bool)) "running" None (Automaton.verdict automaton s0);
      let s1 = Automaton.step automaton s0 (env ~a:false ~b:false) in
      Alcotest.(check (option bool)) "still running" None (Automaton.verdict automaton s1);
      let s2 = Automaton.step automaton s1 (env ~a:false ~b:false) in
      Alcotest.(check (option bool)) "violated" (Some false)
        (Automaton.verdict automaton s2));
    case "rejects nexte formulas" (fun () ->
      match Automaton.compile (Parser.formula_only "nexte[1,170](a)") with
      | _ -> Alcotest.fail "expected Unsupported"
      | exception Automaton.Unsupported _ -> ());
    case "rejects formulas with too many atoms" (fun () ->
      (* Atoms in distinct temporal positions stay distinct through
         boolean demotion. *)
      let wide =
        List.init 13 (fun i -> Printf.sprintf "next[%d](s%d)" (i + 1) i)
        |> String.concat " || "
      in
      match Automaton.compile (Parser.formula_only wide) with
      | _ -> Alcotest.fail "expected Unsupported"
      | exception Automaton.Unsupported _ -> ());
    case "all 9 DES56 and 12 ColorConv property bodies compile" (fun () ->
      List.iter
        (fun p ->
          let automaton, _ = Automaton.compile_body p.Property.formula in
          Alcotest.(check bool)
            (p.Property.name ^ " nontrivial") true
            (Automaton.state_count automaton >= 1))
        (Tabv_duv.Des56_props.all @ Tabv_duv.Colorconv_props.all)) ]

(* Formulas over a small fixed atom pool, so tabling stays cheap
   (random comparisons would each count as a distinct atom). *)
let gen_small_atom_formula =
  let open QCheck.Gen in
  let atom =
    oneof
      [ map (fun v -> Ltl.Atom (Expr.Var v)) (oneofl [ "a"; "b"; "c" ]);
        oneofl
          [ Ltl.Atom (Expr.Cmp (Expr.Le, Expr.Avar "x", Expr.Int 2));
            Ltl.Atom (Expr.Cmp (Expr.Eq, Expr.Avar "y", Expr.Int 0)) ] ]
  in
  sized_size (int_bound 5) @@ fix (fun self n ->
    let negatable = oneof [ atom; map (fun f -> Ltl.Not f) atom ] in
    if n = 0 then negatable
    else
      let sub = self (n / 2) in
      oneof
        [ negatable;
          map (fun p -> Ltl.Not p) (self (n - 1));
          map2 (fun p q -> Ltl.And (p, q)) sub sub;
          map2 (fun p q -> Ltl.Or (p, q)) sub sub;
          map2 (fun p q -> Ltl.Implies (p, q)) sub sub;
          map2 (fun k p -> Ltl.next_n k p) (int_range 1 3) (self (n - 1));
          map2 (fun p q -> Ltl.Until (p, q)) sub sub;
          map2 (fun p q -> Ltl.Release (p, q)) sub sub;
          map (fun p -> Ltl.Always p) (self (n - 1));
          map (fun p -> Ltl.Eventually p) (self (n - 1)) ])

let arb_small_and_trace =
  QCheck.make
    ~print:(fun (t, trace) ->
      Printf.sprintf "%s\non trace:\n%s" (Ltl.to_string t)
        (Format.asprintf "%a" Trace.pp trace))
    QCheck.Gen.(pair gen_small_atom_formula Helpers.gen_trace)

let equivalence_cases =
  [ Helpers.qtest ~count:150 "automaton agrees with progression"
      arb_small_and_trace (fun (f, trace) ->
        match Automaton.compile ~max_states:128 f with
        | automaton ->
          let state = ref (Automaton.initial automaton) in
          for i = 0 to Trace.length trace - 1 do
            let entry = Trace.get trace i in
            match Automaton.verdict automaton !state with
            | Some _ -> ()
            | None -> state := Automaton.step automaton !state (Trace.lookup entry)
          done;
          Automaton.verdict automaton !state = run_progression f trace
        | exception Automaton.Unsupported _ -> true);
    Helpers.qtest ~count:150 "automaton agrees with the declarative semantics"
      arb_small_and_trace (fun (f, trace) ->
        match run_automaton f trace with
        | exception Automaton.Unsupported _ -> true
        | verdict ->
          (* Early-sink runs can only differ from the full semantics
             in one direction: once a verdict is reached it is final,
             which the declarative semantics agrees with. *)
          let expected =
            match Semantics.eval trace (Nnf.convert (Ltl.demote_booleans f)) with
            | Semantics.True -> Some true
            | Semantics.False -> Some false
            | Semantics.Unknown -> None
          in
          verdict = expected) ]

let integration_cases =
  [ case "automaton engine verifies DES56 RTL like progression" (fun () ->
      let ops = Tabv_duv.Workload.des56 ~seed:21 ~count:10 () in
      let prog =
        Tabv_duv.Testbench.run_des56_rtl ~engine:`Progression
          ~properties:Tabv_duv.Des56_props.all ops
      in
      let auto =
        Tabv_duv.Testbench.run_des56_rtl ~engine:`Automaton
          ~properties:Tabv_duv.Des56_props.all ops
      in
      List.iter2
        (fun (p : Tabv_duv.Testbench.checker_stat)
             (a : Tabv_duv.Testbench.checker_stat) ->
          Alcotest.(check string) "same property" p.property_name a.property_name;
          Alcotest.(check int) (p.property_name ^ " activations") p.activations
            a.activations;
          Alcotest.(check int) (p.property_name ^ " passes") p.passes a.passes;
          Alcotest.(check int)
            (p.property_name ^ " failures")
            (List.length p.failures) (List.length a.failures))
        prog.Tabv_duv.Testbench.checker_stats auto.Tabv_duv.Testbench.checker_stats);
    case "automaton engine catches the same injected bug" (fun () ->
      let ops = Tabv_duv.Workload.des56 ~seed:21 ~count:8 () in
      let result =
        Tabv_duv.Testbench.run_des56_rtl ~engine:`Automaton
          ~fault:Tabv_duv.Des56_rtl.Rdy_one_cycle_late
          ~properties:Tabv_duv.Des56_props.all ops
      in
      Alcotest.(check bool) "failures found" true
        (Tabv_duv.Testbench.total_failures result > 0));
    case "engine reports the fallback" (fun () ->
      (* A timed property cannot be tabled: the monitor silently falls
         back to progression. *)
      let q3 = Parser.property_exn ~name:"q3" "always (!ds || nexte[1,170](rdy)) @tb" in
      let monitor = Monitor.create ~engine:`Automaton q3 in
      Alcotest.(check bool) "fell back" true (Monitor.engine monitor = `Progression);
      let p1 = Tabv_duv.Des56_props.p1 in
      let monitor = Monitor.create ~engine:`Automaton p1 in
      Alcotest.(check bool) "tabled" true (Monitor.engine monitor = `Automaton)) ]

let monitor_equivalence_cases =
  (* Differential testing at the monitor level: both engines must
     produce identical counters on random always-properties, with the
     full instance-management machinery in the loop. *)
  [ Helpers.qtest ~count:50 "monitors agree across engines"
      arb_small_and_trace (fun (f, trace) ->
        let property =
          Property.make ~name:"m"
            ~context:(Context.Transaction Context.Base_trans) (Ltl.Always f)
        in
        let run engine =
          let monitor = Monitor.create ~engine property in
          for i = 0 to Trace.length trace - 1 do
            let entry = Trace.get trace i in
            Monitor.step monitor ~time:entry.Trace.time (Trace.lookup entry)
          done;
          ( Monitor.activations monitor,
            Monitor.passes monitor,
            Monitor.pending monitor,
            List.length (Monitor.failures monitor) )
        in
        (* Skip when the body cannot be tabled (fallback makes the two
           runs identical by construction). *)
        let probe = Monitor.create ~engine:`Automaton property in
        Monitor.engine probe <> `Automaton || run `Progression = run `Automaton) ]

let suite =
  ("automaton",
   unit_cases @ equivalence_cases @ integration_cases @ monitor_equivalence_cases)
