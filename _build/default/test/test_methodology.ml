open Tabv_psl
open Tabv_core

(* The three published DES56 properties of Fig. 3 and their expected
   abstractions, clock period 10 ns. *)

let p1 =
  Parser.property_exn ~name:"p1"
    "always (!(ds && indata = 0) || next[17](out != 0)) @clk_pos"

let p2 =
  Parser.property_exn ~name:"p2"
    "always (!ds || (next(!ds until next(rdy)))) @clk_pos"

let p3 =
  Parser.property_exn ~name:"p3"
    "always (!ds || (next[15](rdy_next_next_cycle) && next[16](rdy_next_cycle) && next[17](rdy))) @clk_pos"

let abstracted_signals = [ "rdy_next_cycle"; "rdy_next_next_cycle" ]

let rename name = "q" ^ String.sub name 1 (String.length name - 1)

let abstract p =
  Methodology.abstract ~clock_period:10 ~abstracted_signals ~rename p

(* Compare modulo boolean demotion: the pipeline represents pure
   boolean subtrees as single atoms, the parser as LTL connectives. *)
let expect_output name report expected_source =
  match report.Methodology.output with
  | None -> Alcotest.failf "%s was deleted" name
  | Some q ->
    let expected = Parser.property_exn ~name:q.Property.name expected_source in
    Helpers.check_ltl (name ^ " formula")
      (Ltl.demote_booleans expected.Property.formula)
      (Ltl.demote_booleans q.Property.formula);
    Alcotest.check Helpers.context (name ^ " context") expected.Property.context
      q.Property.context

let fig3_cases =
  [ Alcotest.test_case "p1 -> q1" `Quick (fun () ->
      let report = abstract p1 in
      expect_output "q1" report
        "always (!(ds && indata = 0) || nexte[1,170](out != 0)) @tb";
      Alcotest.(check bool) "no review needed" false report.Methodology.requires_review);
    Alcotest.test_case "p2 -> q2" `Quick (fun () ->
      let report = abstract p2 in
      expect_output "q2" report
        "always (!ds || (nexte[1,10](!ds) until nexte[2,20](rdy))) @tb";
      Alcotest.(check bool) "no review needed" false report.Methodology.requires_review);
    Alcotest.test_case "p3 -> q3" `Quick (fun () ->
      let report = abstract p3 in
      expect_output "q3" report "always (!ds || nexte[1,170](rdy)) @tb";
      Alcotest.(check bool) "no review needed" false report.Methodology.requires_review);
    Alcotest.test_case "q names preserved through rename" `Quick (fun () ->
      let reports = Methodology.abstract_all ~clock_period:10 ~abstracted_signals ~rename [ p1; p2; p3 ] in
      Alcotest.(check (list string)) "names" [ "q1"; "q2"; "q3" ]
        (List.map (fun p -> p.Property.name) (Methodology.surviving reports))) ]

let pipeline_cases =
  [ Alcotest.test_case "substitution report for p2" `Quick (fun () ->
      let report = abstract p2 in
      Alcotest.(check (list (pair int int)))
        "tau/eps" [ (1, 10); (2, 20) ]
        (List.map
           (fun s -> (s.Next_substitution.tau, s.Next_substitution.eps))
           report.Methodology.substitutions));
    Alcotest.test_case "gated clock context maps to gated transaction" `Quick (fun () ->
      let p = Parser.property_exn ~name:"g" "always(!a || next(b)) @(clk_pos && en)" in
      let report = Methodology.abstract ~clock_period:10 p in
      match report.Methodology.output with
      | Some q ->
        Alcotest.check Helpers.context "context"
          (Context.Transaction (Context.Trans_and (Expr.Var "en")))
          q.Property.context
      | None -> Alcotest.fail "deleted");
    Alcotest.test_case "base clock context maps to base transaction" `Quick (fun () ->
      let p = Parser.property_exn ~name:"b" "always(a)" in
      let report = Methodology.abstract ~clock_period:10 p in
      match report.Methodology.output with
      | Some q ->
        Alcotest.check Helpers.context "context"
          (Context.Transaction Context.Base_trans) q.Property.context
      | None -> Alcotest.fail "deleted");
    Alcotest.test_case "protocol-only property is deleted" `Quick (fun () ->
      let p =
        Parser.property_exn ~name:"hs" "always(!req || next(ack)) @clk_pos"
      in
      let report =
        Methodology.abstract ~clock_period:10 ~abstracted_signals:[ "req"; "ack" ] p
      in
      Alcotest.(check bool) "deleted" true (report.Methodology.output = None);
      Alcotest.(check bool) "review" true report.Methodology.requires_review);
    Alcotest.test_case "strengthening flags review" `Quick (fun () ->
      let p = Parser.property_exn ~name:"st" "always(a || next(s)) @clk_pos" in
      let report =
        Methodology.abstract ~clock_period:10 ~abstracted_signals:[ "s" ] p
      in
      Alcotest.(check bool) "review" true report.Methodology.requires_review;
      (match report.Methodology.output with
       | Some q -> Helpers.check_ltl "formula" (Parser.formula_only "always(a)") q.Property.formula
       | None -> Alcotest.fail "not deleted"));
    Alcotest.test_case "rejects TLM input" `Quick (fun () ->
      let p = Parser.property_exn ~name:"t" "always(a) @tb" in
      match Methodology.abstract ~clock_period:10 p with
      | _ -> Alcotest.fail "expected Not_an_rtl_property"
      | exception Methodology.Not_an_rtl_property _ -> ());
    Alcotest.test_case "rejects non-positive clock" `Quick (fun () ->
      match Methodology.abstract ~clock_period:0 p1 with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
    Alcotest.test_case "implication input goes through NNF" `Quick (fun () ->
      let p = Parser.property_exn ~name:"im" "always(ds -> next[2](rdy)) @clk_pos" in
      let report = Methodology.abstract ~clock_period:10 p in
      match report.Methodology.output with
      | Some q ->
        Helpers.check_ltl "formula"
          (Parser.formula_only "always(!ds || nexte[1,20](rdy))")
          q.Property.formula
      | None -> Alcotest.fail "deleted") ]

let theorem_cases =
  (* Empirical Theorem III.2: for random NNF RTL formulas and random
     cycle-accurate traces on which the formula is not violated, the
     abstracted formula is not violated on the timing-equivalent
     transaction trace (here: the same evaluation points, since every
     cycle carries an I/O change). *)
  [ Helpers.qtest ~count:300 "theorem III.2 (dense transaction trace)"
      Helpers.arb_nnf_and_trace (fun (f, trace) ->
        let p = Property.make ~name:"p" ~context:(Context.Clock (Context.Edge Context.Posedge)) f in
        let report = Methodology.abstract ~clock_period:10 p in
        match report.Methodology.output with
        | None -> true
        | Some q ->
          (match Semantics.eval trace f with
           | Semantics.False -> true
           | Semantics.True | Semantics.Unknown ->
             (* The TLM model executes a transaction at every instant
                where an I/O signal changes; on this dense trace every
                cycle is a transaction, so evaluation points match. *)
             Semantics.eval trace q.Property.formula <> Semantics.False)) ]

let theorem_signal_cases =
  (* Theorem III.2 combined with Fig. 4: when signal abstraction only
     weakened the formula, the abstracted property cannot be violated
     on a trace where the original held — even though the abstracted
     signals are gone from the TLM environment. *)
  [ Helpers.qtest ~count:300 "theorem III.2 with weakening-only signal abstraction"
      Helpers.arb_nnf_and_trace (fun (f, trace) ->
        let removed = [ "c" ] in
        let p =
          Property.make ~name:"p"
            ~context:(Context.Clock (Context.Edge Context.Posedge)) f
        in
        let report =
          Methodology.abstract ~clock_period:10 ~abstracted_signals:removed p
        in
        match report.Methodology.output with
        | None -> true
        | Some _ when report.Methodology.requires_review -> true
        | Some q ->
          (match Semantics.eval trace f with
           | Semantics.False -> true
           | Semantics.True | Semantics.Unknown ->
             (* The TLM environment no longer exposes the removed
                signal: evaluation must not need it. *)
             let masked =
               Trace.of_list
                 (List.map
                    (fun (entry : Trace.entry) ->
                      { entry with
                        Trace.env =
                          List.filter
                            (fun (name, _) -> not (List.mem name removed))
                            entry.Trace.env })
                    (Trace.to_list trace))
             in
             Semantics.eval masked q.Property.formula <> Semantics.False)) ]

let mutation_cases =
  (* The empirical theorem validation must have teeth: a deliberately
     wrong Algorithm III.1 (eps off by one clock period) must be
     rejected by the same oracle that accepts the correct one. *)
  [ Alcotest.test_case "a broken eps computation is caught by the oracle" `Quick
      (fun () ->
        let p3_body = Parser.formula_only "always (!ds || next[17](rdy))" in
        let correct =
          Parser.formula_only "always (!ds || nexte[1,170](rdy))"
        in
        let broken = Parser.formula_only "always (!ds || nexte[1,180](rdy))" in
        (* A minimal trace where the RTL property holds. *)
        let entry time ~ds ~rdy =
          { Trace.time; env = [ ("ds", Expr.VBool ds); ("rdy", Expr.VBool rdy) ] }
        in
        let rtl_trace =
          Trace.of_list
            (List.init 20 (fun i ->
               entry (i * 10) ~ds:(i = 0) ~rdy:(i = 17)))
        in
        Alcotest.(check bool) "RTL property holds" true
          (Semantics.holds rtl_trace p3_body);
        Alcotest.(check bool) "correct abstraction holds" true
          (Semantics.holds rtl_trace correct);
        Alcotest.(check bool) "broken abstraction is violated" true
          (Semantics.violated rtl_trace broken)) ]

let suite =
  ("methodology",
   fig3_cases @ pipeline_cases @ theorem_cases @ theorem_signal_cases
   @ mutation_cases)
