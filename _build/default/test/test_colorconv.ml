open Tabv_duv

let case name f = Alcotest.test_case name `Quick f

let check_ycbcr name expected actual =
  Alcotest.(check string) name
    (Format.asprintf "%a" Colorconv.pp_ycbcr expected)
    (Format.asprintf "%a" Colorconv.pp_ycbcr actual)

let known_cases =
  let convert r g b = Colorconv.convert { Colorconv.r; g; b } in
  [ case "black" (fun () ->
      check_ycbcr "black" { Colorconv.y = 16; cb = 128; cr = 128 } (convert 0 0 0));
    case "white" (fun () ->
      check_ycbcr "white" { Colorconv.y = 235; cb = 128; cr = 128 } (convert 255 255 255));
    case "pure red" (fun () ->
      (* Y = 16 + (66*255 + 128) >> 8 = 16 + 66 = 82, etc. *)
      check_ycbcr "red" { Colorconv.y = 82; cb = 90; cr = 240 } (convert 255 0 0));
    case "pure green" (fun () ->
      check_ycbcr "green" { Colorconv.y = 144; cb = 54; cr = 34 } (convert 0 255 0));
    case "pure blue" (fun () ->
      check_ycbcr "blue" { Colorconv.y = 41; cb = 240; cr = 110 } (convert 0 0 255));
    case "mid grey" (fun () ->
      (* 66+129+25 = 220: Y = 16 + (220*128 + 128) >> 8 = 16 + 110 = 126. *)
      check_ycbcr "grey" { Colorconv.y = 126; cb = 128; cr = 128 } (convert 128 128 128));
    case "out of range rejected" (fun () ->
      match Colorconv.convert { Colorconv.r = 256; g = 0; b = 0 } with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

let staged_cases =
  [ case "staged pipeline equals reference" (fun () ->
      let pixel = { Colorconv.r = 12; g = 200; b = 99 } in
      let state = ref (Colorconv.stage_in pixel) in
      for i = 1 to 7 do
        state := Colorconv.stage i !state
      done;
      check_ycbcr "staged" (Colorconv.convert pixel) (Colorconv.stage_out !state));
    case "invalid stage index" (fun () ->
      let state = Colorconv.stage_in { Colorconv.r = 0; g = 0; b = 0 } in
      match Colorconv.stage 8 state with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
    case "stage count is the latency" (fun () ->
      Alcotest.(check int) "stages" 8 Colorconv.stages) ]

let arb_pixel =
  QCheck.make
    ~print:(fun { Colorconv.r; g; b } -> Printf.sprintf "(%d,%d,%d)" r g b)
    QCheck.Gen.(
      map3 (fun r g b -> { Colorconv.r; g; b }) (int_bound 255) (int_bound 255)
        (int_bound 255))

let property_cases =
  [ Helpers.qtest ~count:300 "Y range" arb_pixel (fun pixel ->
      let { Colorconv.y; _ } = Colorconv.convert pixel in
      y >= 16 && y <= 235);
    Helpers.qtest ~count:300 "chroma ranges" arb_pixel (fun pixel ->
      let { Colorconv.cb; cr; _ } = Colorconv.convert pixel in
      cb >= 16 && cb <= 240 && cr >= 16 && cr <= 240);
    Helpers.qtest ~count:300 "staged equals reference" arb_pixel (fun pixel ->
      let state = ref (Colorconv.stage_in pixel) in
      for i = 1 to 7 do
        state := Colorconv.stage i !state
      done;
      Colorconv.equal_ycbcr (Colorconv.convert pixel) (Colorconv.stage_out !state));
    Helpers.qtest ~count:300 "grey axis has neutral chroma" QCheck.(int_bound 255)
      (fun v ->
        let { Colorconv.cb; cr; _ } = Colorconv.convert { Colorconv.r = v; g = v; b = v } in
        abs (cb - 128) <= 1 && abs (cr - 128) <= 1);
    Helpers.qtest ~count:300 "Y is monotone in G" arb_pixel (fun pixel ->
      if pixel.Colorconv.g >= 255 then true
      else
        let brighter = { pixel with Colorconv.g = pixel.Colorconv.g + 1 } in
        (Colorconv.convert brighter).Colorconv.y >= (Colorconv.convert pixel).Colorconv.y) ]

let suite = ("colorconv", known_cases @ staged_cases @ property_cases)
