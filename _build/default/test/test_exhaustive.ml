open Tabv_psl
open Tabv_core

(* Exhaustive bounded-trace validation of every rewriting law the
   methodology relies on: all traces over {a, b} (and {a, b, c}) up to
   depth 5 — thousands of traces per law, no sampling. *)

let case name f = Alcotest.test_case name `Quick f

let holds name result =
  match result with
  | Exhaustive.Holds -> ()
  | Exhaustive.Counterexample trace ->
    Alcotest.failf "%s refuted:\n%s" name (Format.asprintf "%a" Trace.pp trace)

let equiv name f g =
  case name (fun () ->
    holds name
      (Exhaustive.equivalent ~signals:[ "a"; "b" ] ~max_depth:5
         (Parser.formula_only f) (Parser.formula_only g)))

let equiv3 name f g =
  case name (fun () ->
    holds name
      (Exhaustive.equivalent ~signals:[ "a"; "b"; "c" ] ~max_depth:4
         (Parser.formula_only f) (Parser.formula_only g)))

let push_ahead_laws =
  (* The four published transformation rules of Sec. III-A, plus the
     derived always/eventually commutations. *)
  [ equiv "next distributes over or" "next(a || b)" "next(a) || next(b)";
    equiv "next distributes over and" "next(a && b)" "next(a) && next(b)";
    equiv "next distributes over until" "next(a until b)" "next(a) until next(b)";
    equiv "next distributes over release" "next(a release b)"
      "next(a) release next(b)";
    equiv "next commutes with always" "next(always(a))" "always(next(a))";
    equiv "next commutes with eventually" "next(eventually(a))" "eventually(next(a))" ]

let nnf_laws =
  [ equiv "de morgan and" "!(a && b)" "!a || !b";
    equiv "de morgan or" "!(a || b)" "!a && !b";
    equiv "until dual" "!(a until b)" "!a release !b";
    equiv "release dual" "!(a release b)" "!a until !b";
    equiv "always dual" "!(always(a))" "eventually(!a)";
    equiv "eventually dual" "!(eventually(a))" "always(!a)";
    equiv "next self-dual" "!(next(a))" "next(!a)";
    equiv "implication" "a -> b" "!a || b" ]

let derived_operator_laws =
  [ equiv "always as release" "always(a)" "false release a";
    equiv "eventually as until" "eventually(a)" "true until a";
    equiv "weak until textbook definition" "a weak_until b" "(a until b) || always(a)";
    equiv "never" "never(a)" "always(!a)";
    equiv3 "until unfolding" "a until b" "b || (a && next(a until b))";
    equiv3 "release unfolding" "a release b" "b && (a || next(a release b))" ]

let methodology_laws =
  [ case "push-ahead output is exhaustively equivalent (depth 5)" (fun () ->
      let inputs =
        [ "always(!a || next(a until next(b)))";
          "next[2]((a || next(b)) && (b until a))";
          "eventually(next(a && b) || next[3](a))" ]
      in
      List.iter
        (fun source ->
          let f = Parser.formula_only source in
          let pushed = Push_ahead.run f in
          holds source
            (Exhaustive.equivalent ~signals:[ "a"; "b" ] ~max_depth:5 f pushed))
        inputs);
    case "Fig. 4 weakenings are exhaustive implications" (fun () ->
      (* p && s ~> p and friends: the rewritten formula is implied by
         the original on every bounded trace. *)
      List.iter
        (fun (original, rewritten) ->
          let f = Parser.formula_only original and g = Parser.formula_only rewritten in
          holds original
            (Exhaustive.implies ~signals:[ "a"; "b"; "c" ] ~max_depth:4 f g))
        [ ("always(a && c)", "always(a)");
          ("always((a && c) || (b && !c))", "always(a || b)");
          ("always(!a || (next(b) && next(c)))", "always(!a || next(b))") ]);
    case "Fig. 4 disjunct drop is NOT an implication (needs review)" (fun () ->
      (* always(a || c) does not entail always(a): the classifier must
         flag it, and the bounded checker confirms the gap. *)
      let f = Parser.formula_only "always(a || c)" in
      let g = Parser.formula_only "always(a)" in
      match Exhaustive.implies ~signals:[ "a"; "c" ] ~max_depth:4 f g with
      | Exhaustive.Counterexample _ -> ()
      | Exhaustive.Holds -> Alcotest.fail "expected a counterexample") ]

let guard_cases =
  [ case "too many signals rejected" (fun () ->
      match
        Exhaustive.forall ~signals:[ "a"; "b"; "c"; "d"; "e" ] ~max_depth:2
          (fun _ -> true)
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
    case "excessive depth rejected" (fun () ->
      match Exhaustive.forall ~signals:[ "a" ] ~max_depth:9 (fun _ -> true) with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

let suite =
  ("exhaustive",
   push_ahead_laws @ nnf_laws @ derived_operator_laws @ methodology_laws @ guard_cases)
