test/test_fault_injection.ml: Alcotest Des56_props Des56_rtl List Tabv_duv Testbench Workload
