test/test_vcd_replay.ml: Alcotest Expr Filename List Parser Property Sys Tabv_checker Tabv_duv Tabv_psl Tabv_sim Trace Vcd Vcd_reader
