test/test_grid_wrapper.ml: Alcotest Des56_props List Property Tabv_checker Tabv_core Tabv_duv Tabv_psl Tabv_sim Testbench Workload
