test/test_next_substitution.ml: Alcotest Helpers List Ltl Next_substitution Parser Push_ahead Tabv_core Tabv_psl
