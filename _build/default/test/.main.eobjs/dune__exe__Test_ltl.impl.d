test/test_ltl.ml: Alcotest Expr Helpers List Ltl Tabv_psl
