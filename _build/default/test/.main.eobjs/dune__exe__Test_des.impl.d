test/test_des.ml: Alcotest Array Des Helpers Int64 List Printf QCheck Tabv_duv
