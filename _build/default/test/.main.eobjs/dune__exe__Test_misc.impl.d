test/test_misc.ml: Alcotest Context Expr Filename Helpers In_channel Int64 List Parser QCheck String Sys Tabv_checker Tabv_core Tabv_duv Tabv_psl Tabv_sim
