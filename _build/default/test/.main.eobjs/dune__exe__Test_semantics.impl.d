test/test_semantics.ml: Alcotest Expr Helpers List Ltl Parser Semantics Tabv_psl Trace
