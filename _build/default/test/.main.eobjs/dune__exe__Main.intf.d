test/main.mli:
