test/helpers.ml: Alcotest Context Expr Format Gen List Ltl Printf Property QCheck QCheck_alcotest Semantics Tabv_psl Trace
