test/test_push_ahead.ml: Alcotest Helpers Ltl Parser Push_ahead Semantics Tabv_core Tabv_psl
