test/test_monitor.ml: Alcotest Coverage Expr List Monitor Parser Tabv_checker Tabv_psl
