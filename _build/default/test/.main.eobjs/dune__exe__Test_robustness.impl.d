test/test_robustness.ml: Alcotest Char Helpers Int64 List Parser Printf QCheck String Tabv_duv Tabv_psl Tabv_sim
