test/test_colorconv.ml: Alcotest Colorconv Format Helpers Printf QCheck Tabv_duv
