test/test_sim_extra.ml: Alcotest Event Fifo Filename Kernel List Process Signal Sys Tabv_checker Tabv_duv Tabv_psl Tabv_sim Tlm Trace_dump Vcd_reader
