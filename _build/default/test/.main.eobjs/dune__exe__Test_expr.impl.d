test/test_expr.ml: Alcotest Expr Format Helpers List Ltl Parser Tabv_psl
