test/test_paper_artifacts.ml: Alcotest Context Expr Helpers List Ltl Methodology Monitor Parser Property QCheck Tabv_checker Tabv_core Tabv_psl
