test/test_duv_models.ml: Alcotest Colorconv Colorconv_props Context Des Des56_iface Des56_props Expr List Parser Property Tabv_checker Tabv_core Tabv_duv Tabv_psl Testbench Trace Workload
