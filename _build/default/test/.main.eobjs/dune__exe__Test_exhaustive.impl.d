test/test_exhaustive.ml: Alcotest Exhaustive Format List Parser Push_ahead Tabv_core Tabv_psl Trace
