test/test_simple_subset.ml: Alcotest Format List Parser Simple_subset String Tabv_psl
