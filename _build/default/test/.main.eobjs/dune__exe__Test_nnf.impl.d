test/test_nnf.ml: Alcotest Expr Helpers Ltl Nnf Parser Semantics Tabv_psl
