test/test_methodology.ml: Alcotest Context Expr Helpers List Ltl Methodology Next_substitution Parser Property Semantics String Tabv_core Tabv_psl Trace
