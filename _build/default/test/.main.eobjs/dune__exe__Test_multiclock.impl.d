test/test_multiclock.ml: Alcotest Clock Context Expr Helpers Kernel List Ltl Parser Process Property Signal Tabv_checker Tabv_core Tabv_psl Tabv_sim
