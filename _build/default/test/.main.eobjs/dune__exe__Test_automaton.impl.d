test/test_automaton.ml: Alcotest Automaton Context Expr Format Helpers List Ltl Monitor Nnf Parser Printf Progression Property QCheck Semantics String Tabv_checker Tabv_duv Tabv_psl Trace
