test/test_signal_clock.ml: Alcotest Clock Event Int64 Kernel List Process Signal Tabv_psl Tabv_sim Tlm Trace_rec
