test/test_signal_abstraction.ml: Alcotest Helpers List Ltl Parser Semantics Signal_abstraction Tabv_core Tabv_psl
