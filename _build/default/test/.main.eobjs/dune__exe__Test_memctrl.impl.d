test/test_memctrl.ml: Alcotest Int64 List Memctrl_props Memctrl_testbench Property Tabv_core Tabv_duv Tabv_psl Testbench Workload
