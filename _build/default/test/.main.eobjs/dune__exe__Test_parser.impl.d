test/test_parser.ml: Alcotest Context Expr Helpers List Ltl Parser Property Semantics Tabv_core Tabv_psl Trace
