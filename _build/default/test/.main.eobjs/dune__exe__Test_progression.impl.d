test/test_progression.ml: Alcotest Expr Helpers List Parser Progression Semantics Tabv_checker Tabv_psl Trace
