test/test_kernel.ml: Alcotest Event Helpers Kernel List Process QCheck Tabv_sim
