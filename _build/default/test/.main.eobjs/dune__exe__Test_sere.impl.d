test/test_sere.ml: Alcotest Exhaustive Expr Format Helpers List Ltl Parser Property Tabv_core Tabv_duv Tabv_psl Trace
