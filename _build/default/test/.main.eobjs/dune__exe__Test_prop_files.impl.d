test/test_prop_files.ml: Alcotest Context Filename Format Fun List Ltl Parser Property String Sys Tabv_duv Tabv_psl
