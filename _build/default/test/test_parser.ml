open Tabv_psl

let atom s = Ltl.Atom (Expr.Var s)

let parses name source expected =
  Alcotest.test_case name `Quick (fun () ->
    Helpers.check_ltl name expected (Parser.formula_only source))

let parses_ctx name source expected_formula expected_context =
  Alcotest.test_case name `Quick (fun () ->
    let f, c = Parser.formula source in
    Helpers.check_ltl (name ^ " formula") expected_formula f;
    Alcotest.check Helpers.context (name ^ " context") expected_context c)

let rejects name source =
  Alcotest.test_case name `Quick (fun () ->
    match Parser.formula_only source with
    | _ -> Alcotest.failf "expected parse error for %S" source
    | exception Parser.Parse_error _ -> ())

let formula_cases =
  [ parses "variable" "ds" (atom "ds");
    parses "negation" "!ds" (Ltl.Not (atom "ds"));
    parses "conjunction" "a && b" (Ltl.And (atom "a", atom "b"));
    parses "disjunction left assoc" "a || b || c"
      (Ltl.Or (Ltl.Or (atom "a", atom "b"), atom "c"));
    parses "and binds tighter than or" "a || b && c"
      (Ltl.Or (atom "a", Ltl.And (atom "b", atom "c")));
    parses "implication right assoc" "a -> b -> c"
      (Ltl.Implies (atom "a", Ltl.Implies (atom "b", atom "c")));
    parses "next" "next(a)" (Ltl.Next_n (1, atom "a"));
    parses "next without parens" "next a" (Ltl.Next_n (1, atom "a"));
    parses "bounded next" "next[17](out != 0)"
      (Ltl.Next_n (17, Ltl.Atom (Expr.Cmp (Expr.Neq, Expr.Avar "out", Expr.Int 0))));
    parses "nexte" "nexte[2,20](rdy)"
      (Ltl.Next_event ({ tau = 2; eps = 20 }, atom "rdy"));
    parses "until" "a until b" (Ltl.Until (atom "a", atom "b"));
    parses "release" "a release b" (Ltl.Release (atom "a", atom "b"));
    parses "until right assoc" "a until b until c"
      (Ltl.Until (atom "a", Ltl.Until (atom "b", atom "c")));
    parses "always" "always(a)" (Ltl.Always (atom "a"));
    parses "eventually" "eventually(a)" (Ltl.Eventually (atom "a"));
    parses "comparison with =" "indata = 0"
      (Ltl.Atom (Expr.Cmp (Expr.Eq, Expr.Avar "indata", Expr.Int 0)));
    parses "comparison with ==" "indata == 0"
      (Ltl.Atom (Expr.Cmp (Expr.Eq, Expr.Avar "indata", Expr.Int 0)));
    parses "diamond operator" "indata <> 0"
      (Ltl.Atom (Expr.Cmp (Expr.Neq, Expr.Avar "indata", Expr.Int 0)));
    parses "arithmetic" "x + 2 * y <= 10"
      (Ltl.Atom
         (Expr.Cmp
            (Expr.Le, Expr.Add (Expr.Avar "x", Expr.Mul (Expr.Int 2, Expr.Avar "y")), Expr.Int 10)));
    parses "parenthesised arithmetic" "(x + 1) * 2 == 4"
      (Ltl.Atom
         (Expr.Cmp
            (Expr.Eq, Expr.Mul (Expr.Add (Expr.Avar "x", Expr.Int 1), Expr.Int 2), Expr.Int 4)));
    parses "negative literal" "x > -3"
      (Ltl.Atom (Expr.Cmp (Expr.Gt, Expr.Avar "x", Expr.Int (-3))));
    parses "true and false" "true || false" (Ltl.Or (Ltl.tt, Ltl.ff));
    parses "comment skipped" "a -- trailing comment\n&& b" (Ltl.And (atom "a", atom "b"));
    parses "paper p1 body"
      "always (!(ds && indata = 0) || next[17](out != 0))"
      (Ltl.Always
         (Ltl.Or
            (Ltl.Not
               (Ltl.And (atom "ds", Ltl.Atom (Expr.Cmp (Expr.Eq, Expr.Avar "indata", Expr.Int 0)))),
             Ltl.Next_n (17, Ltl.Atom (Expr.Cmp (Expr.Neq, Expr.Avar "out", Expr.Int 0)))))) ]

let context_cases =
  [ parses_ctx "default context" "a" (atom "a") (Context.Clock Context.Base_clock);
    parses_ctx "clk_pos" "a @clk_pos" (atom "a") (Context.Clock (Context.Edge Context.Posedge));
    parses_ctx "clk_neg" "a @clk_neg" (atom "a") (Context.Clock (Context.Edge Context.Negedge));
    parses_ctx "clk" "a @clk" (atom "a") (Context.Clock (Context.Edge Context.Any_edge));
    parses_ctx "base true" "a @true" (atom "a") (Context.Clock Context.Base_clock);
    parses_ctx "tb" "a @tb" (atom "a") (Context.Transaction Context.Base_trans);
    parses_ctx "gated clock" "a @(clk_pos && en)" (atom "a")
      (Context.Clock (Context.Edge_and (Context.Posedge, Expr.Var "en")));
    parses_ctx "gated transaction" "a @(tb && mode == 1)" (atom "a")
      (Context.Transaction
         (Context.Trans_and (Expr.Cmp (Expr.Eq, Expr.Avar "mode", Expr.Int 1)))) ]

let sugar_cases =
  [ parses "never" "never(a)" (Ltl.Always (Ltl.Not (atom "a")));
    parses "never without parens" "never a" (Ltl.Always (Ltl.Not (atom "a")));
    parses "weak until desugars to release" "a weak_until b"
      (Ltl.Release (atom "b", Ltl.Or (atom "a", atom "b")));
    parses "before desugars to until" "a before b"
      (Ltl.Until (Ltl.Not (atom "b"), Ltl.And (atom "a", Ltl.Not (atom "b"))));
    Alcotest.test_case "weak until is weak" `Quick (fun () ->
      (* a holds forever, b never: weak until is not violated. *)
      let f = Parser.formula_only "a weak_until b" in
      let trace =
        Trace.cycle_trace ~period:10
          (List.init 5 (fun _ -> [ ("a", Expr.VBool true); ("b", Expr.VBool false) ]))
      in
      Alcotest.(check bool) "not violated" true (Semantics.holds trace f));
    Alcotest.test_case "strong until would be pending on the same trace" `Quick
      (fun () ->
        let f = Parser.formula_only "a until b" in
        let trace =
          Trace.cycle_trace ~period:10
            (List.init 5 (fun _ -> [ ("a", Expr.VBool true); ("b", Expr.VBool false) ]))
        in
        Alcotest.check Helpers.verdict "pending" Semantics.Unknown (Semantics.eval trace f));
    Alcotest.test_case "before requires strict precedence" `Quick (fun () ->
      let f = Parser.formula_only "a before b" in
      let mk a b = [ ("a", Expr.VBool a); ("b", Expr.VBool b) ] in
      let good = Trace.cycle_trace ~period:10 [ mk false false; mk true false; mk false true ] in
      let bad = Trace.cycle_trace ~period:10 [ mk false false; mk false true ] in
      let simultaneous = Trace.cycle_trace ~period:10 [ mk false false; mk true true ] in
      Alcotest.check Helpers.verdict "good" Semantics.True (Semantics.eval good f);
      Alcotest.check Helpers.verdict "bad" Semantics.False (Semantics.eval bad f);
      Alcotest.check Helpers.verdict "simultaneous fails" Semantics.False
        (Semantics.eval simultaneous f)) ]

let psl_alias_cases =
  [ parses "until! is the strong until" "a until! b" (Ltl.Until (atom "a", atom "b"));
    parses "eventually! alias" "eventually! a" (Ltl.Eventually (atom "a")) ]

let window_cases =
  [ parses "next_a window" "next_a[2..4](b)"
      (Ltl.And
         (Ltl.And (Ltl.Next_n (2, atom "b"), Ltl.Next_n (3, atom "b")),
          Ltl.Next_n (4, atom "b")));
    parses "next_e window" "next_e[1..2](b)"
      (Ltl.Or (Ltl.Next_n (1, atom "b"), Ltl.Next_n (2, atom "b")));
    parses "degenerate window" "next_a[3..3](b)" (Ltl.Next_n (3, atom "b"));
    rejects "reversed window" "next_a[4..2](b)";
    rejects "zero window start" "next_e[0..2](b)";
    Alcotest.test_case "windows flow through the methodology" `Quick (fun () ->
      (* next_a over a window becomes a set of nexte with one eps per
         covered cycle — Algorithm III.1 applies unchanged. *)
      let p =
        Parser.property_exn ~name:"w" "always (!a || next_a[2..3](b)) @clk_pos"
      in
      let report = Tabv_core.Methodology.abstract ~clock_period:10 p in
      match report.Tabv_core.Methodology.output with
      | Some q ->
        Alcotest.(check (list (pair int int)))
          "tau/eps"
          [ (1, 20); (2, 30) ]
          (List.map
             (fun (ne : Ltl.next_event) -> (ne.Ltl.tau, ne.Ltl.eps))
             (Ltl.next_events q.Property.formula))
      | None -> Alcotest.fail "deleted");
    Alcotest.test_case "next_e window semantics" `Quick (fun () ->
      let f = Parser.formula_only "next_e[1..3](b)" in
      let mk b = [ ("b", Expr.VBool b) ] in
      let hit = Trace.cycle_trace ~period:10 [ mk false; mk false; mk false; mk true ] in
      let miss =
        Trace.cycle_trace ~period:10 [ mk false; mk false; mk false; mk false ]
      in
      Alcotest.check Helpers.verdict "hit" Semantics.True (Semantics.eval hit f);
      Alcotest.check Helpers.verdict "miss" Semantics.False (Semantics.eval miss f)) ]

let error_cases =
  [ rejects "unbalanced paren" "(a || b";
    rejects "missing operand" "a &&";
    rejects "lone operator" "&& a";
    rejects "bad next bound" "next[0](a)";
    rejects "nexte missing eps" "nexte[1](a)";
    rejects "trailing garbage" "a b";
    rejects "temporal inside context" "a @(clk_pos && next(b))";
    rejects "unknown context" "a @clk_bogus";
    rejects "single ampersand" "a & b" ]

let file_cases =
  [ Alcotest.test_case "property file" `Quick (fun () ->
      let source =
        "-- DES56 sample\n\
         property p1 = always (!ds || next[17](rdy)) @clk_pos;\n\
         property p2 = a until b @tb;\n"
      in
      match Parser.file source with
      | [ p1; p2 ] ->
        Alcotest.(check string) "name1" "p1" p1.Property.name;
        Alcotest.(check bool) "p1 is rtl" true (Property.is_rtl p1);
        Alcotest.(check string) "name2" "p2" p2.Property.name;
        Alcotest.(check bool) "p2 is tlm" true (Property.is_tlm p2)
      | other -> Alcotest.failf "expected 2 properties, got %d" (List.length other));
    Alcotest.test_case "empty file" `Quick (fun () ->
      Alcotest.(check int) "none" 0 (List.length (Parser.file "-- nothing\n")));
    Alcotest.test_case "missing semicolon" `Quick (fun () ->
      match Parser.file "property p = a" with
      | _ -> Alcotest.fail "expected parse error"
      | exception Parser.Parse_error _ -> ());
    Alcotest.test_case "error position" `Quick (fun () ->
      match Parser.formula_only "a &&\n  ||" with
      | _ -> Alcotest.fail "expected parse error"
      | exception Parser.Parse_error { line; _ } ->
        Alcotest.(check int) "line" 2 line) ]

let const_cases =
  [ Alcotest.test_case "file constants substitute into next bounds" `Quick (fun () ->
      let source =
        "const LATENCY = 17;\n\
         const ZERO = 0;\n\
         property p = always (!(ds && indata = ZERO) || next[LATENCY](rdy)) @clk_pos;\n"
      in
      match Parser.file source with
      | [ p ] ->
        Helpers.check_ltl "formula"
          (Parser.formula_only "always (!(ds && indata = 0) || next[17](rdy))")
          p.Property.formula
      | other -> Alcotest.failf "expected 1 property, got %d" (List.length other));
    Alcotest.test_case "constants work in window bounds and comparisons" `Quick
      (fun () ->
        let source =
          "const LO = 2;\nconst HI = 3;\nconst LIMIT = 235;\n\
           property w = always (!dv || next_a[LO..HI](y <= LIMIT)) @clk_pos;\n"
        in
        match Parser.file source with
        | [ p ] ->
          Helpers.check_ltl "formula"
            (Parser.formula_only "always (!dv || next_a[2..3](y <= 235))")
            p.Property.formula
        | _ -> Alcotest.fail "expected 1 property");
    Alcotest.test_case "negative constants" `Quick (fun () ->
      match Parser.file "const FLOOR = -4;\nproperty p = always(x > FLOOR);\n" with
      | [ p ] ->
        Helpers.check_ltl "formula" (Parser.formula_only "always(x > -4)")
          p.Property.formula
      | _ -> Alcotest.fail "expected 1 property");
    Alcotest.test_case "unknown constant is an ordinary signal in arith" `Quick
      (fun () ->
        match Parser.file "property p = always(x > FLOOR);\n" with
        | [ p ] ->
          Helpers.check_ltl "formula" (Parser.formula_only "always(x > FLOOR)")
            p.Property.formula
        | _ -> Alcotest.fail "expected 1 property");
    Alcotest.test_case "unknown constant rejected in next bound" `Quick (fun () ->
      match Parser.file "property p = always(next[NOPE](a));\n" with
      | _ -> Alcotest.fail "expected parse error"
      | exception Parser.Parse_error _ -> ()) ]

let roundtrip_cases =
  [ Helpers.qtest "print/parse round-trip" Helpers.arb_ltl_general (fun f ->
      match Parser.formula_only (Ltl.to_string f) with
      | parsed -> Ltl.equal f parsed
      | exception Parser.Parse_error _ -> false) ]

let suite =
  ("parser",
   formula_cases @ context_cases @ sugar_cases @ psl_alias_cases @ window_cases
   @ error_cases @ file_cases @ const_cases @ roundtrip_cases)
