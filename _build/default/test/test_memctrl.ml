open Tabv_psl
open Tabv_duv

(* The MemCtrl extension IP: asymmetric write/read latencies through
   the abstraction methodology. *)

let case name f = Alcotest.test_case name `Quick f

let ops = Workload.memctrl ~seed:13 ~count:40 ()
let expected = List.map Int64.of_int (Memctrl_testbench.reference_reads ops)

let failing (result : Testbench.run_result) =
  List.filter_map
    (fun stat ->
      if stat.Testbench.failures <> [] then Some stat.Testbench.property_name else None)
    result.Testbench.checker_stats

let functional_cases =
  [ case "RTL read-back matches the reference memory" (fun () ->
      let result = Memctrl_testbench.run_rtl ops in
      Alcotest.(check (list int64)) "reads" expected result.Testbench.outputs;
      Alcotest.(check int) "ops" (List.length ops) result.Testbench.completed_ops);
    case "TLM-AT read-back matches the reference memory" (fun () ->
      let result = Memctrl_testbench.run_tlm_at ops in
      Alcotest.(check (list int64)) "reads" expected result.Testbench.outputs);
    case "all 8 RTL properties hold on the RTL model" (fun () ->
      let result = Memctrl_testbench.run_rtl ~properties:Memctrl_props.all ops in
      Alcotest.(check (list string)) "no failures" [] (failing result));
    case "TLM-CA read-back matches the reference memory" (fun () ->
      let result = Memctrl_testbench.run_tlm_ca ops in
      Alcotest.(check (list int64)) "reads" expected result.Testbench.outputs);
    case "all 8 RTL properties reuse unabstracted on TLM-CA" (fun () ->
      let result = Memctrl_testbench.run_tlm_ca ~properties:Memctrl_props.all ops in
      Alcotest.(check (list string)) "no failures" [] (failing result)) ]

let abstraction_cases =
  [ case "abstraction summary: asymmetric latencies give distinct eps" (fun () ->
      let reports = Memctrl_props.abstraction_reports () in
      let eps_of name =
        List.find_map
          (fun r ->
            if r.Tabv_core.Methodology.input.Property.name = name then
              Some
                (List.map
                   (fun s -> s.Tabv_core.Next_substitution.eps)
                   r.Tabv_core.Methodology.substitutions)
            else None)
          reports
      in
      Alcotest.(check (option (list int))) "write latency 20 ns" (Some [ 20 ])
        (eps_of "n1");
      Alcotest.(check (option (list int))) "read latency 30 ns" (Some [ 30 ])
        (eps_of "n2"));
    case "auto-safe set excludes protocol and until properties" (fun () ->
      let names =
        List.map (fun p -> p.Property.name) (Memctrl_props.tlm_auto_safe ())
      in
      Alcotest.(check (list string)) "names" [ "tn1"; "tn2"; "tn4" ] names) ]

let abv_cases =
  [ case "auto-safe abstracted properties hold on TLM-AT" (fun () ->
      let result =
        Memctrl_testbench.run_tlm_at ~properties:(Memctrl_props.tlm_auto_safe ()) ops
      in
      Alcotest.(check (list string)) "no failures" [] (failing result));
    case "wrong write latency caught by tn1 only" (fun () ->
      let result =
        Memctrl_testbench.run_tlm_at ~write_latency_ns:30
          ~properties:(Memctrl_props.tlm_auto_safe ()) ops
      in
      let failed = failing result in
      Alcotest.(check bool) "tn1 fails" true (List.mem "tn1" failed);
      Alcotest.(check bool) "tn2 unaffected" false (List.mem "tn2" failed));
    case "wrong read latency caught by tn2 only" (fun () ->
      let result =
        Memctrl_testbench.run_tlm_at ~read_latency_ns:20
          ~properties:(Memctrl_props.tlm_auto_safe ()) ops
      in
      let failed = failing result in
      Alcotest.(check bool) "tn2 fails" true (List.mem "tn2" failed);
      Alcotest.(check bool) "tn1 unaffected" false (List.mem "tn1" failed)) ]

let suite = ("memctrl", functional_cases @ abstraction_cases @ abv_cases)
