open Tabv_psl
open Tabv_core
open Tabv_checker

(* Direct reconstructions of the paper's remaining artefacts:
   Theorem III.1's statement and the Fig. 5 wrapper timeline. *)

let case name f = Alcotest.test_case name `Quick f

(* --- Theorem III.1: until/release-only properties need no formula
   transformation, only the context mapping --- *)

let gen_until_release_only =
  let open QCheck.Gen in
  sized_size (int_bound 4) @@ fix (fun self n ->
    let atom =
      oneof
        [ map (fun v -> Ltl.Atom (Expr.Var v)) (oneofl Helpers.bool_signals);
          map (fun v -> Ltl.Not (Ltl.Atom (Expr.Var v))) (oneofl Helpers.bool_signals) ]
    in
    if n = 0 then atom
    else
      let sub = self (n / 2) in
      oneof
        [ atom;
          map2 (fun p q -> Ltl.And (p, q)) sub sub;
          map2 (fun p q -> Ltl.Or (p, q)) sub sub;
          map2 (fun p q -> Ltl.Until (p, q)) sub sub;
          map2 (fun p q -> Ltl.Release (p, q)) sub sub;
          map (fun p -> Ltl.Always p) (self (n - 1));
          map (fun p -> Ltl.Eventually p) (self (n - 1)) ])

let theorem_iii1_cases =
  [ Helpers.qtest ~count:300 "theorem III.1: no-next properties pass through unchanged"
      (QCheck.make ~print:Ltl.to_string gen_until_release_only)
      (fun f ->
        let p =
          Property.make ~name:"p" ~context:(Context.Clock (Context.Edge Context.Posedge)) f
        in
        let report = Methodology.abstract ~clock_period:10 p in
        match report.Methodology.output with
        | Some q ->
          Ltl.equal (Ltl.demote_booleans f) (Ltl.demote_booleans q.Property.formula)
          && q.Property.context = Context.Transaction Context.Base_trans
          && report.Methodology.substitutions = []
        | None -> false) ]

(* --- Fig. 5: evolution of the wrapper for q3 --- *)

let fig5_cases =
  [ case "Fig. 5 timeline: failure at 350 ns for the instance fired at 170 ns"
      (fun () ->
        (* q3's checker, driven by the transaction instants sketched in
           Fig. 5: instances fire at each transaction; the instance
           fired at 170 ns (ds high) expects its evaluation point at
           340 ns, but the next transaction only arrives at 350 ns. *)
        let q3 =
          Parser.property_exn ~name:"q3" "always (!ds || nexte[1,170](rdy)) @tb"
        in
        let monitor = Monitor.create q3 in
        let env ~ds ~rdy =
          fun name ->
            match name with
            | "ds" -> Some (Expr.VBool ds)
            | "rdy" -> Some (Expr.VBool rdy)
            | _ -> None
        in
        (* C[0] fires at 0 ns and completes successfully at 170 ns. *)
        Monitor.step monitor ~time:0 (env ~ds:true ~rdy:false);
        Monitor.step monitor ~time:40 (env ~ds:false ~rdy:false);
        Monitor.step monitor ~time:170 (env ~ds:true ~rdy:true);
        (* passes = C[0] plus the trivially-true instance of 40 ns. *)
        Alcotest.(check int) "C[0] completed" 2 (Monitor.passes monitor);
        Alcotest.(check (list int)) "no failures yet" []
          (List.map (fun f -> f.Monitor.failure_time) (Monitor.failures monitor));
        (* The instance fired at 170 ns expects 340 ns... *)
        Monitor.step monitor ~time:250 (env ~ds:false ~rdy:false);
        Alcotest.(check int) "still pending" 1 (Monitor.pending monitor);
        (* ...but the next transaction arrives at 350 ns. *)
        Monitor.step monitor ~time:350 (env ~ds:false ~rdy:true);
        (match Monitor.failures monitor with
         | [ f ] ->
           Alcotest.(check int) "fired at" 170 f.Monitor.activation_time;
           Alcotest.(check int) "failure raised at" 350 f.Monitor.failure_time
         | other -> Alcotest.failf "expected exactly one failure, got %d"
                      (List.length other)));
    case "Fig. 5 happy path: every expected instant served" (fun () ->
      let q3 =
        Parser.property_exn ~name:"q3" "always (!ds || nexte[1,170](rdy)) @tb"
      in
      let monitor = Monitor.create q3 in
      let env ~ds ~rdy =
        fun name ->
          match name with
          | "ds" -> Some (Expr.VBool ds)
          | "rdy" -> Some (Expr.VBool rdy)
          | _ -> None
      in
      Monitor.step monitor ~time:0 (env ~ds:true ~rdy:false);
      Monitor.step monitor ~time:170 (env ~ds:true ~rdy:true);
      Monitor.step monitor ~time:340 (env ~ds:false ~rdy:true);
      (* C[0], C[170] and the trivially-true instance of 340 ns. *)
      Alcotest.(check int) "three passes" 3 (Monitor.passes monitor);
      Alcotest.(check int) "none live" 0 (Monitor.live_instances monitor);
      Alcotest.(check (list int)) "no failures" []
        (List.map (fun f -> f.Monitor.failure_time) (Monitor.failures monitor))) ]

let suite = ("paper_artifacts", theorem_iii1_cases @ fig5_cases)
