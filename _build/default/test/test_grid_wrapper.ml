open Tabv_psl
open Tabv_duv

(* The grid-mode wrapper extension: evaluating abstracted properties
   on the reference clock grid over the persistent TLM state.  This is
   what makes the paper's until-based q2 checkable on a sparse
   approximately-timed trace (see DESIGN.md). *)

let case name f = Alcotest.test_case name `Quick f

let ops = Workload.des56 ~seed:5 ~count:10 ()

let q_named name =
  match
    List.find_map
      (fun r ->
        match r.Tabv_core.Methodology.output with
        | Some q when q.Property.name = name -> Some q
        | _ -> None)
      (Des56_props.abstraction_reports ())
  with
  | Some q -> q
  | None -> Alcotest.failf "no abstracted property %s" name

let grid_stat name (result : Testbench.run_result) =
  match
    List.find_opt
      (fun s -> s.Testbench.property_name = name)
      result.Testbench.checker_stats
  with
  | Some stat -> stat
  | None -> Alcotest.failf "no checker stat for %s" name

let cases =
  [ case "q2 passes under the grid wrapper on TLM-AT" (fun () ->
      let q2 = q_named "q2" in
      let result = Testbench.run_des56_tlm_at ~grid_properties:[ q2 ] ops in
      let stat = grid_stat "q2" result in
      Alcotest.(check int) "no failures" 0 (List.length stat.Testbench.failures);
      Alcotest.(check bool) "activated" true (stat.Testbench.activations > 0));
    case "q2 fails under the strict wrapper on the same workload" (fun () ->
      let q2 = q_named "q2" in
      let result = Testbench.run_des56_tlm_at ~properties:[ q2 ] ops in
      let stat = grid_stat "q2" result in
      Alcotest.(check bool) "fails or hangs" true
        (stat.Testbench.failures <> [] || stat.Testbench.pending > 0));
    case "grid wrapper also discharges the plain timed properties" (fun () ->
      let result =
        Testbench.run_des56_tlm_at ~grid_properties:(Des56_props.tlm_auto_safe ()) ops
      in
      Alcotest.(check int) "no failures" 0 (Testbench.total_failures result));
    case "grid wrapper catches a wrong abstraction too" (fun () ->
      let q2 = q_named "q2" in
      let result =
        Testbench.run_des56_tlm_at ~model_latency_ns:160
          ~grid_properties:[ q2; q_named "q3" ] ops
      in
      Alcotest.(check bool) "failures" true (Testbench.total_failures result > 0));
    case "grid wrapper evaluates once per clock period" (fun () ->
      let q3 = q_named "q3" in
      let strict = Testbench.run_des56_tlm_at ~properties:[ q3 ] ops in
      let grid = Testbench.run_des56_tlm_at ~grid_properties:[ q3 ] ops in
      let strict_stat = grid_stat "q3" strict in
      let grid_stat = grid_stat "q3" grid in
      (* Grid mode consumes many more evaluation points: every 10 ns
         versus only at transactions. *)
      Alcotest.(check bool) "more steps in grid mode" true
        (Tabv_duv.Testbench.(grid_stat.passes + grid_stat.activations)
         > strict_stat.Testbench.passes + strict_stat.Testbench.activations));
    case "rejects clock-context properties" (fun () ->
      let kernel = Tabv_sim.Kernel.create () in
      match
        Tabv_checker.Wrapper.attach_grid kernel ~clock_period:10 Des56_props.p1
          ~lookup:(fun _ -> None)
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

let suite = ("grid_wrapper", cases)
