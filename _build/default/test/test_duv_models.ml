open Tabv_psl
open Tabv_duv

let case name f = Alcotest.test_case name `Quick f

let des_ops = Workload.des56 ~seed:7 ~count:12 ()
let cc_bursts = Workload.colorconv ~seed:7 ~count:30 ()

let expected_des_outputs ops =
  List.map
    (fun op ->
      Des.process ~decrypt:op.Des56_iface.decrypt ~key:op.Des56_iface.key
        op.Des56_iface.indata)
    ops

let expected_cc_outputs bursts =
  List.concat_map
    (fun burst -> List.map (fun p -> Testbench.pack_ycbcr (Colorconv.convert p)) burst)
    bursts

let check_outputs name expected (result : Testbench.run_result) =
  Alcotest.(check (list int64)) (name ^ " outputs") expected result.Testbench.outputs

(* --- functional correctness of every model --- *)

let functional_cases =
  [ case "DES56 RTL computes DES" (fun () ->
      check_outputs "rtl" (expected_des_outputs des_ops) (Testbench.run_des56_rtl des_ops));
    case "DES56 TLM-CA computes DES" (fun () ->
      check_outputs "ca" (expected_des_outputs des_ops)
        (Testbench.run_des56_tlm_ca des_ops));
    case "DES56 TLM-AT computes DES" (fun () ->
      check_outputs "at" (expected_des_outputs des_ops)
        (Testbench.run_des56_tlm_at des_ops));
    case "ColorConv RTL converts pixels" (fun () ->
      check_outputs "rtl" (expected_cc_outputs cc_bursts)
        (Testbench.run_colorconv_rtl cc_bursts));
    case "ColorConv TLM-CA converts pixels" (fun () ->
      check_outputs "ca" (expected_cc_outputs cc_bursts)
        (Testbench.run_colorconv_tlm_ca cc_bursts));
    case "ColorConv TLM-AT converts pixels" (fun () ->
      check_outputs "at" (expected_cc_outputs cc_bursts)
        (Testbench.run_colorconv_tlm_at cc_bursts)) ]

(* --- timing equivalence (Def. III.1): RTL and TLM-CA traces agree
   on every evaluation point --- *)

let entry_env (entry : Trace.entry) = List.sort compare entry.Trace.env

(* The RTL trace also contains the elaboration-time edge at 0 ns that
   precedes the first TLM frame; align on common instants. *)
let check_timing_equivalent (rtl : Testbench.run_result) (ca : Testbench.run_result) =
  match rtl.Testbench.trace, ca.Testbench.trace with
  | Some rtl_trace, Some ca_trace ->
    let rtl_entries =
      List.filter (fun (e : Trace.entry) -> e.Trace.time >= 10) (Trace.to_list rtl_trace)
    in
    let ca_entries = Trace.to_list ca_trace in
    let rec compare_entries i rtl_list ca_list =
      match rtl_list, ca_list with
      | [], _ | _, [] -> i
      | (re : Trace.entry) :: rtl_rest, (ce : Trace.entry) :: ca_rest ->
        if re.Trace.time <> ce.Trace.time || entry_env re <> entry_env ce then
          Alcotest.failf "traces diverge at common index %d (%dns vs %dns)" i
            re.Trace.time ce.Trace.time
        else compare_entries (i + 1) rtl_rest ca_rest
    in
    let compared = compare_entries 0 rtl_entries ca_entries in
    Alcotest.(check bool) "nonempty" true (compared > 50)
  | _ -> Alcotest.fail "traces missing"

let timing_equivalence_cases =
  [ case "DES56 RTL and TLM-CA traces are identical" (fun () ->
      let rtl = Testbench.run_des56_rtl ~record_trace:true des_ops in
      let ca = Testbench.run_des56_tlm_ca ~record_trace:true des_ops in
      check_timing_equivalent rtl ca);
    case "ColorConv RTL and TLM-CA traces are identical" (fun () ->
      let rtl = Testbench.run_colorconv_rtl ~record_trace:true cc_bursts in
      let ca = Testbench.run_colorconv_tlm_ca ~record_trace:true cc_bursts in
      check_timing_equivalent rtl ca);
    case "DES56 TLM-AT events are a subset of the RTL clock grid" (fun () ->
      let at = Testbench.run_des56_tlm_at ~record_trace:true des_ops in
      match at.Testbench.trace with
      | Some trace ->
        List.iter
          (fun (entry : Trace.entry) ->
            Alcotest.(check int) "on grid" 0 (entry.Trace.time mod 10))
          (Trace.to_list trace)
      | None -> Alcotest.fail "trace missing");
    case "DES56 TLM-AT agrees with RTL on the preserved signals (Def. III.1)" (fun () ->
      (* At every TLM-AT event instant, the preserved observable
         signals (ds, rdy, out when rdy) must carry the same values the
         RTL trace carries at that instant. *)
      let rtl = Testbench.run_des56_rtl ~record_trace:true des_ops in
      let at = Testbench.run_des56_tlm_at ~record_trace:true des_ops in
      match rtl.Testbench.trace, at.Testbench.trace with
      | Some rtl_trace, Some at_trace ->
        let check_signal name (rtl_entry : Trace.entry) (at_entry : Trace.entry) =
          match Trace.lookup rtl_entry name, Trace.lookup at_entry name with
          | Some rv, Some av ->
            if not (Expr.equal_value rv av) then
              Alcotest.failf "%s differs at %dns" name at_entry.Trace.time
          | _ -> Alcotest.failf "signal %s missing at %dns" name at_entry.Trace.time
        in
        List.iter
          (fun (at_entry : Trace.entry) ->
            match
              Trace.index_at_time rtl_trace ~from:0 ~time:at_entry.Trace.time
            with
            | None -> Alcotest.failf "no RTL edge at %dns" at_entry.Trace.time
            | Some i ->
              let rtl_entry = Trace.get rtl_trace i in
              check_signal "ds" rtl_entry at_entry;
              check_signal "rdy" rtl_entry at_entry;
              (match Trace.lookup at_entry "rdy" with
               | Some (Expr.VBool true) -> check_signal "out" rtl_entry at_entry
               | _ -> ()))
          (Trace.to_list at_trace)
      | _ -> Alcotest.fail "traces missing") ]

(* --- end-to-end ABV: RTL properties hold on the RTL and TLM-CA
   models; abstracted properties hold on the TLM-AT model --- *)

let no_failures name (result : Testbench.run_result) =
  List.iter
    (fun stat ->
      match stat.Testbench.failures with
      | [] -> ()
      | failure :: _ ->
        Alcotest.failf "%s: %a" name Tabv_checker.Monitor.pp_failure failure)
    result.Testbench.checker_stats

let has_activity (result : Testbench.run_result) =
  List.iter
    (fun stat ->
      if stat.Testbench.activations = 0 && stat.Testbench.passes = 0 then
        Alcotest.failf "checker %s never activated" stat.Testbench.property_name)
    result.Testbench.checker_stats

let abv_cases =
  [ case "all 9 RTL properties hold on DES56 RTL" (fun () ->
      let result = Testbench.run_des56_rtl ~properties:Des56_props.all des_ops in
      no_failures "des56 rtl" result;
      has_activity result);
    case "all 9 RTL properties hold on DES56 TLM-CA (unabstracted reuse)" (fun () ->
      let result = Testbench.run_des56_tlm_ca ~properties:Des56_props.all des_ops in
      no_failures "des56 tlm-ca" result;
      has_activity result);
    case "auto-safe abstracted properties hold on DES56 TLM-AT" (fun () ->
      let properties = Des56_props.tlm_auto_safe () in
      Alcotest.(check bool) "some survive" true (List.length properties >= 3);
      let result = Testbench.run_des56_tlm_at ~properties des_ops in
      no_failures "des56 tlm-at" result);
    case "all 12 RTL properties hold on ColorConv RTL" (fun () ->
      let result = Testbench.run_colorconv_rtl ~properties:Colorconv_props.all cc_bursts in
      no_failures "colorconv rtl" result;
      has_activity result);
    case "all 12 RTL properties hold on ColorConv TLM-CA" (fun () ->
      let result =
        Testbench.run_colorconv_tlm_ca ~properties:Colorconv_props.all cc_bursts
      in
      no_failures "colorconv tlm-ca" result);
    case "auto-safe abstracted properties hold on ColorConv TLM-AT" (fun () ->
      let properties = Colorconv_props.tlm_auto_safe () in
      Alcotest.(check bool) "some survive" true (List.length properties >= 3);
      let result = Testbench.run_colorconv_tlm_at ~properties cc_bursts in
      no_failures "colorconv tlm-at" result);
    case "unabstracted RTL properties misfire on TLM-AT (paper motivation)" (fun () ->
      (* Reusing p1/p3 without abstraction on the AT model counts
         transactions instead of cycles: next[17] never sees 17 events
         in time, so either failures or stuck instances result.  This
         is the motivating problem of Sec. III-A. *)
      let kernelish =
        Testbench.run_des56_tlm_at des_ops
          ~properties:
            (List.map
               (fun p ->
                 (* Force a transaction context so the wrapper accepts
                    the otherwise unabstracted formula. *)
                 Property.make ~name:(p.Property.name ^ "_raw")
                   ~context:(Context.Transaction Context.Base_trans)
                   p.Property.formula)
               [ Des56_props.p1; Des56_props.p3 ])
      in
      let misbehaved =
        List.exists
          (fun stat ->
            stat.Testbench.failures <> [] || stat.Testbench.pending > 0)
          kernelish.Testbench.checker_stats
      in
      Alcotest.(check bool) "misfires" true misbehaved) ]

(* --- online/offline consistency: the wrapper's verdict on a live
   simulation equals the declarative semantics on the recorded
   trace --- *)

let consistency_cases =
  [ case "wrapper verdicts match Semantics on the recorded AT trace" (fun () ->
      let properties = Des56_props.tlm_auto_safe () in
      let result =
        Testbench.run_des56_tlm_at ~record_trace:true ~properties des_ops
      in
      match result.Testbench.trace with
      | None -> Alcotest.fail "no trace"
      | Some trace ->
        List.iter
          (fun stat ->
            let property =
              List.find
                (fun p -> p.Property.name = stat.Testbench.property_name)
                properties
            in
            let online_failed = stat.Testbench.failures <> [] in
            let offline_failed =
              Tabv_psl.Semantics.violated trace property.Property.formula
            in
            if online_failed <> offline_failed then
              Alcotest.failf "%s: online %b vs offline %b"
                stat.Testbench.property_name online_failed offline_failed)
          result.Testbench.checker_stats);
    case "same consistency on a wrongly abstracted model" (fun () ->
      let properties = Des56_props.tlm_auto_safe () in
      let result =
        Testbench.run_des56_tlm_at ~model_latency_ns:160 ~record_trace:true
          ~properties des_ops
      in
      match result.Testbench.trace with
      | None -> Alcotest.fail "no trace"
      | Some trace ->
        List.iter
          (fun stat ->
            let property =
              List.find
                (fun p -> p.Property.name = stat.Testbench.property_name)
                properties
            in
            Alcotest.(check bool)
              (stat.Testbench.property_name ^ " agrees")
              (stat.Testbench.failures <> [])
              (Tabv_psl.Semantics.violated trace property.Property.formula))
          result.Testbench.checker_stats) ]

(* --- loosely timed: the timing-equivalence boundary --- *)

let lt_cases =
  [ case "TLM-LT still computes DES correctly" (fun () ->
      check_outputs "lt" (expected_des_outputs des_ops)
        (Testbench.run_des56_tlm_lt des_ops));
    case "timed abstracted properties fail on the non-equivalent LT model" (fun () ->
      (* Theorem III.2's precondition (timing equivalence) is violated
         by construction: q3 must flag it. *)
      let result =
        Testbench.run_des56_tlm_lt ~properties:(Des56_props.tlm_auto_safe ()) des_ops
      in
      Alcotest.(check bool) "failures" true (Testbench.total_failures result > 0));
    case "boolean-only invariants survive even at LT" (fun () ->
      (* At LT, delivery happens within the strobe call, so rdy
         implies ds at every evaluation point. *)
      let invariant =
        [ Property.make ~name:"lt_inv"
            ~context:(Context.Transaction Context.Base_trans)
            (Parser.formula_only "always(!rdy || ds)") ]
      in
      let result = Testbench.run_des56_tlm_lt ~properties:invariant des_ops in
      Alcotest.(check int) "no failures" 0 (Testbench.total_failures result)) ]

(* --- paper q2 on a sparse AT trace: the documented gap --- *)

let q2_cases =
  [ case "q2 (until-based) is not evaluable on the sparse AT trace" (fun () ->
      let reports = Des56_props.abstraction_reports () in
      let q2 =
        match
          List.find_map
            (fun r ->
              match r.Tabv_core.Methodology.output with
              | Some q when q.Property.name = "q2" -> Some q
              | _ -> None)
            reports
        with
        | Some q -> q
        | None -> Alcotest.fail "q2 missing"
      in
      let result = Testbench.run_des56_tlm_at ~properties:[ q2 ] des_ops in
      (* The strict Def. III.3 semantics cannot discharge the until's
         timed operands between transactions; see DESIGN.md. *)
      Alcotest.(check bool) "q2 fails or hangs under the strict wrapper" true
        (Testbench.total_failures result > 0
         || List.exists (fun s -> s.Testbench.pending > 0) result.Testbench.checker_stats)) ]

let suite =
  ("duv_models",
   functional_cases @ timing_equivalence_cases @ abv_cases @ consistency_cases
   @ lt_cases @ q2_cases)
