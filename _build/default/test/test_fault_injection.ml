open Tabv_duv

(* Negative tests: injected design bugs must be caught by the right
   properties, and only by them. *)

let case name f = Alcotest.test_case name `Quick f

let ops = Workload.des56 ~seed:3 ~count:8 ()

let failing_properties (result : Testbench.run_result) =
  List.filter_map
    (fun stat ->
      if stat.Testbench.failures <> [] then Some stat.Testbench.property_name else None)
    result.Testbench.checker_stats

let rtl_cases =
  [ case "late rdy caught by the next[n] properties, tolerated by until" (fun () ->
      let result =
        Testbench.run_des56_rtl ~fault:Des56_rtl.Rdy_one_cycle_late
          ~properties:Des56_props.all ops
      in
      let failing = failing_properties result in
      List.iter
        (fun expected ->
          Alcotest.(check bool)
            (expected ^ " fails") true (List.mem expected failing))
        [ "p3"; "p5" ];
      (* p2's until does not reference a precise instant (Sec. III-A):
         the response arriving one cycle later still discharges it. *)
      Alcotest.(check bool) "p2 tolerates the extra cycle" false (List.mem "p2" failing);
      (* p4 only watches rdy_next_next_cycle, which is on time. *)
      Alcotest.(check bool) "p4 unaffected" false (List.mem "p4" failing));
    case "stuck rdy_next_cycle caught by p3/p5/p7" (fun () ->
      let result =
        Testbench.run_des56_rtl ~fault:Des56_rtl.Rdy_next_cycle_stuck_low
          ~properties:Des56_props.all ops
      in
      let failing = failing_properties result in
      List.iter
        (fun expected ->
          Alcotest.(check bool)
            (expected ^ " fails") true (List.mem expected failing))
        [ "p3"; "p5"; "p7" ];
      Alcotest.(check bool) "p1 unaffected" false (List.mem "p1" failing);
      Alcotest.(check bool) "p9 unaffected" false (List.mem "p9" failing));
    case "zeroed result caught by p1" (fun () ->
      (* Force indata = 0 so p1's antecedent fires. *)
      let zero_ops = Workload.des56 ~seed:3 ~count:8 ~zero_fraction:1.0 () in
      let result =
        Testbench.run_des56_rtl ~fault:Des56_rtl.Result_zeroed
          ~properties:Des56_props.all zero_ops
      in
      let failing = failing_properties result in
      Alcotest.(check bool) "p1 fails" true (List.mem "p1" failing);
      Alcotest.(check bool) "p3 unaffected" false (List.mem "p3" failing));
    case "faulty model still computes until the fault point" (fun () ->
      let result =
        Testbench.run_des56_rtl ~fault:Des56_rtl.Rdy_next_cycle_stuck_low ops
      in
      Alcotest.(check int) "ops complete" (List.length ops)
        result.Testbench.completed_ops) ]

let tlm_cases =
  [ case "wrong TLM latency caught by the abstracted properties" (fun () ->
      (* A wrongly abstracted model (160 ns instead of 170) makes the
         read-end event land before the instant q1/q3 require: exactly
         the failure Theorem III.2 attributes to a wrong abstraction. *)
      let result =
        Testbench.run_des56_tlm_at ~model_latency_ns:160
          ~properties:(Des56_props.tlm_auto_safe ()) ops
      in
      let failing = failing_properties result in
      Alcotest.(check bool) "q3 fails" true (List.mem "q3" failing));
    case "correct TLM latency passes the same properties" (fun () ->
      let result =
        Testbench.run_des56_tlm_at ~properties:(Des56_props.tlm_auto_safe ()) ops
      in
      Alcotest.(check int) "no failures" 0 (Testbench.total_failures result));
    case "slow TLM model also caught" (fun () ->
      let result =
        Testbench.run_des56_tlm_at ~model_latency_ns:180
          ~properties:(Des56_props.tlm_auto_safe ()) ops
      in
      Alcotest.(check bool) "failures" true (Testbench.total_failures result > 0)) ]

let suite = ("fault_injection", rtl_cases @ tlm_cases)
