open Tabv_psl

(* The property files shipped in props/ must stay in sync with the
   built-in OCaml definitions (they are the user-facing form of the
   same sets). *)

let case name f = Alcotest.test_case name `Quick f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Tests run from the test build directory; find the repo root by
   walking up until props/ exists. *)
let props_dir () =
  let rec search dir depth =
    if depth > 8 then None
    else if Sys.file_exists (Filename.concat dir "props") then
      Some (Filename.concat dir "props")
    else search (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  search (Sys.getcwd ()) 0

let with_props_file name k =
  match props_dir () with
  | None -> Alcotest.skip ()
  | Some dir -> k (read_file (Filename.concat dir name))

let equal_modulo_demotion a b =
  Ltl.equal (Ltl.demote_booleans a.Property.formula)
    (Ltl.demote_booleans b.Property.formula)
  && Context.equal a.Property.context b.Property.context
  && String.equal a.Property.name b.Property.name

let cases =
  [ case "props/des56.psl matches Des56_props.all" (fun () ->
      with_props_file "des56.psl" (fun source ->
        let parsed = Parser.file source in
        Alcotest.(check int) "count" 9 (List.length parsed);
        List.iter2
          (fun file_p builtin_p ->
            if not (equal_modulo_demotion file_p builtin_p) then
              Alcotest.failf "mismatch for %s:\n  file:    %a\n  builtin: %a"
                builtin_p.Property.name Property.pp file_p Property.pp builtin_p)
          parsed Tabv_duv.Des56_props.all));
    case "props/colorconv.psl matches Colorconv_props.all" (fun () ->
      with_props_file "colorconv.psl" (fun source ->
        let parsed = Parser.file source in
        Alcotest.(check int) "count" 12 (List.length parsed);
        List.iter2
          (fun file_p builtin_p ->
            if not (equal_modulo_demotion file_p builtin_p) then
              Alcotest.failf "mismatch for %s" builtin_p.Property.name)
          parsed Tabv_duv.Colorconv_props.all));
    case "props/memctrl.psl matches Memctrl_props.all" (fun () ->
      with_props_file "memctrl.psl" (fun source ->
        let parsed = Parser.file source in
        Alcotest.(check int) "count" 8 (List.length parsed);
        List.iter2
          (fun file_p builtin_p ->
            if not (equal_modulo_demotion file_p builtin_p) then
              Alcotest.failf "mismatch for %s" builtin_p.Property.name)
          parsed Tabv_duv.Memctrl_props.all));
    case "printed properties re-parse to the same file" (fun () ->
      (* Round-trip the whole DES56 set through print + file parse. *)
      let printed =
        String.concat "\n"
          (List.map
             (fun p ->
               Format.asprintf "property %s = %a %a;" p.Property.name Ltl.pp
                 p.Property.formula Context.pp p.Property.context)
             Tabv_duv.Des56_props.all)
      in
      let reparsed = Parser.file printed in
      List.iter2
        (fun a b ->
          if not (Property.equal a b) then
            Alcotest.failf "round-trip mismatch for %s" a.Property.name)
        reparsed Tabv_duv.Des56_props.all) ]

let suite = ("prop_files", cases)
