open Tabv_psl
open Tabv_checker

let lookup_of bindings name = List.assoc_opt name bindings

let env_t = lookup_of [ ("a", Expr.VBool true); ("b", Expr.VBool false) ]
let env_ab = lookup_of [ ("a", Expr.VBool true); ("b", Expr.VBool true) ]
let env_none = lookup_of [ ("a", Expr.VBool false); ("b", Expr.VBool false) ]

let formula source = Parser.formula_only source

let step_seq source envs =
  (* Step once per env at times 0, 10, 20, ... *)
  let ob = ref (Progression.of_formula (formula source)) in
  List.iteri (fun i env -> ob := Progression.step ~time:(i * 10) env !ob) envs;
  !ob

let verdict_is name expected ob =
  Alcotest.(check (option bool)) name expected (Progression.verdict ob)

let case name f = Alcotest.test_case name `Quick f

let untimed_cases =
  [ case "atom resolves immediately" (fun () ->
      verdict_is "true" (Some true) (step_seq "a" [ env_t ]);
      verdict_is "false" (Some false) (step_seq "b" [ env_t ]));
    case "negated atom" (fun () ->
      verdict_is "true" (Some true) (step_seq "!b" [ env_t ]));
    case "conjunction short-circuits" (fun () ->
      verdict_is "false" (Some false) (step_seq "a && b" [ env_t ]));
    case "next defers one step" (fun () ->
      let ob = step_seq "next(a)" [ env_none ] in
      verdict_is "pending" None ob;
      verdict_is "resolved" (Some true)
        (Progression.step ~time:10 env_t ob));
    case "next[3] defers three steps" (fun () ->
      let ob = step_seq "next[3](b)" [ env_t; env_t; env_t ] in
      verdict_is "pending" None ob;
      verdict_is "resolved" (Some false) (Progression.step ~time:30 env_t ob));
    case "until discharges on rhs" (fun () ->
      verdict_is "true" (Some true) (step_seq "a until b" [ env_t; env_t; env_ab ]));
    case "until fails when lhs breaks" (fun () ->
      verdict_is "false" (Some false) (step_seq "a until b" [ env_t; env_none ]));
    case "until pending while lhs holds" (fun () ->
      verdict_is "pending" None (step_seq "a until b" [ env_t; env_t; env_t ]));
    case "release pending forever" (fun () ->
      verdict_is "pending" None (step_seq "b release a" [ env_t; env_t ]));
    case "release discharges at release point" (fun () ->
      verdict_is "true" (Some true) (step_seq "b release a" [ env_t; env_ab ]));
    case "release fails when payload breaks" (fun () ->
      verdict_is "false" (Some false) (step_seq "b release a" [ env_t; env_none ]));
    case "always pending until violation" (fun () ->
      verdict_is "pending" None (step_seq "always(a)" [ env_t; env_t ]);
      verdict_is "false" (Some false) (step_seq "always(a)" [ env_t; env_none ]));
    case "eventually resolves on witness" (fun () ->
      verdict_is "true" (Some true) (step_seq "eventually(b)" [ env_t; env_ab ]);
      verdict_is "pending" None (step_seq "eventually(b)" [ env_t; env_t ]));
    case "rejects non-NNF" (fun () ->
      match Progression.of_formula (formula "!(a && b)") with
      | _ -> Alcotest.fail "expected Not_in_nnf"
      | exception Progression.Not_in_nnf _ -> ()) ]

let timed_cases =
  [ case "nexte waits for the exact instant" (fun () ->
      let ob = Progression.of_formula (formula "nexte[1,170](a)") in
      let ob = Progression.step ~time:0 env_none ob in
      verdict_is "pending after firing" None ob;
      Alcotest.(check bool) "timed wait" true (Progression.has_timed_wait ob);
      Alcotest.(check (option int)) "evaluation table entry" (Some 170)
        (Progression.next_evaluation_time ob);
      (* A transaction before the instant is ignored. *)
      let ob = Progression.step ~time:40 env_none ob in
      verdict_is "still pending" None ob;
      (* The transaction at exactly 170 evaluates the operand. *)
      let ob = Progression.step ~time:170 env_t ob in
      verdict_is "resolved" (Some true) ob);
    case "nexte fails when the instant is skipped" (fun () ->
      let ob = Progression.of_formula (formula "nexte[1,170](a)") in
      let ob = Progression.step ~time:0 env_none ob in
      let ob = Progression.step ~time:180 env_t ob in
      verdict_is "failed" (Some false) ob);
    case "nexte operand false at the instant" (fun () ->
      let ob = Progression.of_formula (formula "nexte[1,20](b)") in
      let ob = Progression.step ~time:0 env_t ob in
      let ob = Progression.step ~time:20 env_t ob in
      verdict_is "failed" (Some false) ob);
    case "chained nexte re-anchors at its own instant" (fun () ->
      let ob = Progression.of_formula (formula "nexte[1,20](nexte[2,30](a))") in
      let ob = Progression.step ~time:0 env_none ob in
      let ob = Progression.step ~time:20 env_none ob in
      Alcotest.(check (option int)) "second target" (Some 50)
        (Progression.next_evaluation_time ob);
      let ob = Progression.step ~time:50 env_t ob in
      verdict_is "resolved" (Some true) ob);
    case "paper q3 wrapper behaviour (Fig. 5)" (fun () ->
      (* q3 body: !ds || nexte[1,170](rdy); instance fired at a
         transaction where ds holds. *)
      let body = formula "!ds || nexte[1,170](rdy)" in
      let env ~ds ~rdy =
        lookup_of [ ("ds", Expr.VBool ds); ("rdy", Expr.VBool rdy) ]
      in
      let ob = Progression.step ~time:0 (env ~ds:true ~rdy:false)
          (Progression.of_formula body)
      in
      verdict_is "fired" None ob;
      (* Unrelated transactions in between are skipped. *)
      let ob = Progression.step ~time:40 (env ~ds:false ~rdy:false) ob in
      let ob = Progression.step ~time:90 (env ~ds:false ~rdy:false) ob in
      verdict_is "still waiting" None ob;
      let ob = Progression.step ~time:170 (env ~ds:false ~rdy:true) ob in
      verdict_is "passes" (Some true) ob);
    case "paper q3 late transaction raises failure" (fun () ->
      let body = formula "!ds || nexte[1,170](rdy)" in
      let env ~ds ~rdy =
        lookup_of [ ("ds", Expr.VBool ds); ("rdy", Expr.VBool rdy) ]
      in
      let ob = Progression.step ~time:0 (env ~ds:true ~rdy:false)
          (Progression.of_formula body)
      in
      let ob = Progression.step ~time:180 (env ~ds:false ~rdy:true) ob in
      verdict_is "fails" (Some false) ob) ]

let equivalence_cases =
  (* The progression verdict agrees with the declarative three-valued
     semantics on full traces. *)
  [ Helpers.qtest ~count:300 "progression agrees with Semantics"
      Helpers.arb_nnf_and_trace (fun (f, trace) ->
        let ob = ref (Progression.of_formula f) in
        (try
           for i = 0 to Trace.length trace - 1 do
             let entry = Trace.get trace i in
             ob := Progression.step ~time:entry.Trace.time (Trace.lookup entry) !ob
           done
         with _ -> ());
        let expected =
          match Semantics.eval trace f with
          | Semantics.True -> Some true
          | Semantics.False -> Some false
          | Semantics.Unknown -> None
        in
        Progression.verdict !ob = expected);
    Helpers.qtest ~count:300 "timed progression agrees with timed semantics"
      Helpers.arb_timed_nnf_and_trace (fun (f, trace) ->
        let ob = ref (Progression.of_formula f) in
        for i = 0 to Trace.length trace - 1 do
          let entry = Trace.get trace i in
          ob := Progression.step ~time:entry.Trace.time (Trace.lookup entry) !ob
        done;
        let expected =
          match Semantics.eval trace f with
          | Semantics.True -> Some true
          | Semantics.False -> Some false
          | Semantics.Unknown -> None
        in
        Progression.verdict !ob = expected) ]

let suite = ("progression", untimed_cases @ timed_cases @ equivalence_cases)
