open Tabv_psl

(* Smaller units: context mapping, VCD output, workload determinism,
   data-word mapping, wrapper sizing. *)

let case name f = Alcotest.test_case name `Quick f

let context_map_cases =
  let check name input expected =
    case name (fun () ->
      Alcotest.check Helpers.context name expected (Tabv_core.Context_map.run input))
  in
  [ check "base clock" (Context.Clock Context.Base_clock)
      (Context.Transaction Context.Base_trans);
    check "posedge" (Context.Clock (Context.Edge Context.Posedge))
      (Context.Transaction Context.Base_trans);
    check "negedge" (Context.Clock (Context.Edge Context.Negedge))
      (Context.Transaction Context.Base_trans);
    check "any edge" (Context.Clock (Context.Edge Context.Any_edge))
      (Context.Transaction Context.Base_trans);
    check "gated edge keeps the gate"
      (Context.Clock (Context.Edge_and (Context.Posedge, Expr.Var "en")))
      (Context.Transaction (Context.Trans_and (Expr.Var "en")));
    check "transaction context unchanged"
      (Context.Transaction (Context.Trans_and (Expr.Var "en")))
      (Context.Transaction (Context.Trans_and (Expr.Var "en"))) ]

let vcd_cases =
  [ case "vcd writer emits a well-formed file" (fun () ->
      let path = Filename.temp_file "tabv" ".vcd" in
      let oc = open_out path in
      let vcd = Tabv_sim.Vcd.create oc ~timescale:"1ns" in
      let clk = Tabv_sim.Vcd.add_var vcd ~name:"clk" ~width:1 in
      let bus = Tabv_sim.Vcd.add_var vcd ~name:"bus" ~width:8 in
      Tabv_sim.Vcd.change_bool vcd ~time:0 clk true;
      Tabv_sim.Vcd.change_int64 vcd ~time:0 bus 0xA5L;
      Tabv_sim.Vcd.change_bool vcd ~time:5 clk false;
      Tabv_sim.Vcd.close vcd;
      close_out oc;
      let content = In_channel.with_open_text path In_channel.input_all in
      Sys.remove path;
      List.iter
        (fun needle ->
          if not
               (List.exists
                  (fun line ->
                    String.length line >= String.length needle
                    && String.sub line 0 (String.length needle) = needle)
                  (String.split_on_char '\n' content))
          then Alcotest.failf "missing line starting with %S" needle)
        [ "$timescale 1ns $end"; "$var wire 1 ! clk $end"; "$var wire 8 \" bus $end";
          "#0"; "#5"; "b10100101 \"" ]);
    case "vcd rejects variables after the header" (fun () ->
      let path = Filename.temp_file "tabv" ".vcd" in
      let oc = open_out path in
      let vcd = Tabv_sim.Vcd.create oc ~timescale:"1ns" in
      let v = Tabv_sim.Vcd.add_var vcd ~name:"x" ~width:1 in
      Tabv_sim.Vcd.change_bool vcd ~time:0 v true;
      (match Tabv_sim.Vcd.add_var vcd ~name:"y" ~width:1 with
       | _ -> Alcotest.fail "expected Invalid_argument"
       | exception Invalid_argument _ -> ());
      close_out oc;
      Sys.remove path);
    case "vcd rejects time going backwards" (fun () ->
      let path = Filename.temp_file "tabv" ".vcd" in
      let oc = open_out path in
      let vcd = Tabv_sim.Vcd.create oc ~timescale:"1ns" in
      let v = Tabv_sim.Vcd.add_var vcd ~name:"x" ~width:1 in
      Tabv_sim.Vcd.change_bool vcd ~time:10 v true;
      (match Tabv_sim.Vcd.change_bool vcd ~time:5 v false with
       | () -> Alcotest.fail "expected Invalid_argument"
       | exception Invalid_argument _ -> ());
      close_out oc;
      Sys.remove path) ]

let workload_cases =
  [ case "des56 workload is deterministic per seed" (fun () ->
      let a = Tabv_duv.Workload.des56 ~seed:5 ~count:20 () in
      let b = Tabv_duv.Workload.des56 ~seed:5 ~count:20 () in
      Alcotest.(check bool) "equal" true (a = b);
      let c = Tabv_duv.Workload.des56 ~seed:6 ~count:20 () in
      Alcotest.(check bool) "different seed differs" true (a <> c));
    case "zero_fraction is honoured at the extremes" (fun () ->
      let all_zero = Tabv_duv.Workload.des56 ~seed:1 ~count:50 ~zero_fraction:1.0 () in
      Alcotest.(check bool) "all zero" true
        (List.for_all (fun (op : Tabv_duv.Des56_iface.op) -> op.Tabv_duv.Des56_iface.indata = 0L) all_zero);
      let none_zero = Tabv_duv.Workload.des56 ~seed:1 ~count:50 ~zero_fraction:0.0 () in
      Alcotest.(check bool) "none zero" true
        (List.for_all (fun (op : Tabv_duv.Des56_iface.op) -> op.Tabv_duv.Des56_iface.indata <> 0L) none_zero));
    case "colorconv bursts cover the requested pixel count" (fun () ->
      let bursts = Tabv_duv.Workload.colorconv ~seed:9 ~count:137 () in
      Alcotest.(check int) "total" 137
        (List.fold_left (fun acc b -> acc + List.length b) 0 bursts);
      Alcotest.(check bool) "burst sizes within bound" true
        (List.for_all (fun b -> List.length b >= 1 && List.length b <= 8) bursts)) ]

let data_cases =
  [ case "int_of_data preserves the zero test" (fun () ->
      Alcotest.(check int) "zero" 0 (Tabv_duv.Duv_util.int_of_data 0L);
      Alcotest.(check bool) "min_int64 not zero" true
        (Tabv_duv.Duv_util.int_of_data Int64.min_int <> 0);
      Alcotest.(check bool) "arbitrary not zero" true
        (Tabv_duv.Duv_util.int_of_data 0x8000000000000000L <> 0));
    Helpers.qtest ~count:200 "int_of_data zero-equivalence"
      (QCheck.make QCheck.Gen.(map Int64.of_int int))
      (fun v -> Tabv_duv.Duv_util.int_of_data v = 0 = (v = 0L)) ]

let wrapper_sizing_cases =
  [ case "array_size matches the paper's q3 example" (fun () ->
      let kernel = Tabv_sim.Kernel.create () in
      let initiator = Tabv_sim.Tlm.Initiator.create kernel ~name:"i" in
      let q3 =
        Parser.property_exn ~name:"q3" "always (!ds || nexte[1,170](rdy)) @tb"
      in
      let wrapper =
        Tabv_checker.Wrapper.attach kernel initiator q3 ~lookup:(fun _ -> None)
      in
      Alcotest.(check int) "17 slots" 17
        (Tabv_checker.Wrapper.array_size wrapper ~clock_period:10));
    case "array_size rounds up" (fun () ->
      let kernel = Tabv_sim.Kernel.create () in
      let initiator = Tabv_sim.Tlm.Initiator.create kernel ~name:"i" in
      let q =
        Parser.property_exn ~name:"q" "always (!ds || nexte[1,25](rdy)) @tb"
      in
      let wrapper =
        Tabv_checker.Wrapper.attach kernel initiator q ~lookup:(fun _ -> None)
      in
      Alcotest.(check int) "3 slots" 3
        (Tabv_checker.Wrapper.array_size wrapper ~clock_period:10)) ]

let json_cases =
  let open Tabv_core.Report_json in
  [ case "json escaping" (fun () ->
      Alcotest.(check string) "escaped"
        {|{"s":"a\"b\\c\nd","n":-3,"b":true,"x":null,"l":[1,2]}|}
        (to_string
           (Assoc
              [ ("s", String "a\"b\\c\nd"); ("n", Int (-3)); ("b", Bool true);
                ("x", Null); ("l", List [ Int 1; Int 2 ]) ])));
    case "control characters become \\u escapes" (fun () ->
      Alcotest.(check string) "u-escape" {|"\u0001"|} (to_string (String "\x01")));
    case "report json carries the q1 substitution" (fun () ->
      let reports = Tabv_duv.Des56_props.abstraction_reports () in
      let json = to_string (of_reports reports) in
      List.iter
        (fun needle ->
          if not
               (let nl = String.length needle and hl = String.length json in
                let rec scan i =
                  i + nl <= hl && (String.sub json i nl = needle || scan (i + 1))
                in
                scan 0)
          then Alcotest.failf "missing %S in JSON output" needle)
        [ {|"clock_period_ns":10|}; {|"eps_ns":170|}; {|"name":"q1"|};
          {|"classification":"weakened"|}; {|"requires_review":true|};
          {|"needs_dense_trace":true|} ]) ]

let suite =
  ("misc",
   context_map_cases @ vcd_cases @ workload_cases @ data_cases @ wrapper_sizing_cases
   @ json_cases)
