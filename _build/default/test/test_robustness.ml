open Tabv_psl

(* Fuzz-style robustness: malformed inputs must raise the documented
   exceptions, never crash or loop. *)

let printable_junk =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 60))

let token_soup =
  (* Strings assembled from language fragments: more likely to reach
     deep parser states than raw junk. *)
  let fragments =
    [ "always"; "eventually"; "next"; "nexte"; "until"; "release"; "("; ")";
      "["; "]"; "{"; "}"; "|->"; "|=>"; "&&"; "||"; "!"; "->"; "a"; "b"; "17";
      "@clk_pos"; "@tb"; ";"; "property"; "="; ","; ".."; "[*2]"; "never";
      "weak_until"; "before"; "next_a"; "next_e"; "const" ]
  in
  QCheck.Gen.(
    map (String.concat " ")
      (list_size (int_range 0 12) (oneofl fragments)))

let suite_cases =
  [ Helpers.qtest ~count:500 "parser never crashes on printable junk"
      (QCheck.make ~print:(Printf.sprintf "%S") printable_junk)
      (fun source ->
        match Parser.formula_only source with
        | _ -> true
        | exception Parser.Parse_error _ -> true);
    Helpers.qtest ~count:500 "parser never crashes on token soup"
      (QCheck.make ~print:(Printf.sprintf "%S") token_soup)
      (fun source ->
        match Parser.formula_only source with
        | _ -> true
        | exception Parser.Parse_error _ -> true);
    Helpers.qtest ~count:500 "file parser never crashes on token soup"
      (QCheck.make ~print:(Printf.sprintf "%S") token_soup)
      (fun source ->
        match Parser.file source with
        | _ -> true
        | exception Parser.Parse_error _ -> true);
    Helpers.qtest ~count:300 "vcd reader never crashes on junk"
      (QCheck.make ~print:(Printf.sprintf "%S")
         QCheck.Gen.(
           map (String.concat "\n")
             (list_size (int_range 0 10)
                (oneof
                   [ printable_junk;
                     oneofl
                       [ "$var wire 1 ! s $end"; "$enddefinitions $end"; "#10";
                         "#5"; "1!"; "b1010 !"; "$timescale 1ns $end"; "x!" ] ]))))
      (fun source ->
        match Tabv_sim.Vcd_reader.parse source with
        | _ -> true
        | exception Tabv_sim.Vcd_reader.Parse_error _ -> true) ]

(* Soak: larger end-to-end runs exercising instance churn and heap
   growth that the small unit workloads never reach. *)
let soak_cases =
  [ Alcotest.test_case "soak: 500-op DES56 RTL with all checkers" `Slow (fun () ->
      let ops = Tabv_duv.Workload.des56 ~seed:101 ~count:500 () in
      let result =
        Tabv_duv.Testbench.run_des56_rtl ~properties:Tabv_duv.Des56_props.all ops
      in
      Alcotest.(check int) "ops" 500 result.Tabv_duv.Testbench.completed_ops;
      Alcotest.(check int) "failures" 0 (Tabv_duv.Testbench.total_failures result));
    Alcotest.test_case "soak: 20k-pixel ColorConv CA with all checkers" `Slow
      (fun () ->
        let bursts = Tabv_duv.Workload.colorconv ~seed:101 ~count:20_000 () in
        let result =
          Tabv_duv.Testbench.run_colorconv_tlm_ca
            ~properties:Tabv_duv.Colorconv_props.all bursts
        in
        Alcotest.(check int) "failures" 0 (Tabv_duv.Testbench.total_failures result));
    Alcotest.test_case "soak: 2000-op MemCtrl AT read-back" `Slow (fun () ->
      let ops = Tabv_duv.Workload.memctrl ~seed:101 ~count:2000 () in
      let result =
        Tabv_duv.Memctrl_testbench.run_tlm_at
          ~properties:(Tabv_duv.Memctrl_props.tlm_auto_safe ()) ops
      in
      Alcotest.(check int) "failures" 0 (Tabv_duv.Testbench.total_failures result);
      Alcotest.(check (list int64)) "reads"
        (List.map Int64.of_int (Tabv_duv.Memctrl_testbench.reference_reads ops))
        result.Tabv_duv.Testbench.outputs) ]

let suite = ("robustness", suite_cases @ soak_cases)
