open Tabv_psl

let v s = Expr.Var s
let atom s = Ltl.Atom (v s)

let structure_cases =
  [ Alcotest.test_case "next_n collapses chains" `Quick (fun () ->
      Helpers.check_ltl "collapse"
        (Ltl.Next_n (5, atom "a"))
        (Ltl.next_n 2 (Ltl.Next_n (3, atom "a"))));
    Alcotest.test_case "next_n zero is identity" `Quick (fun () ->
      Helpers.check_ltl "zero" (atom "a") (Ltl.next_n 0 (atom "a")));
    Alcotest.test_case "next_n negative rejected" `Quick (fun () ->
      Alcotest.check_raises "negative" (Invalid_argument "Ltl.next_n: negative count")
        (fun () -> ignore (Ltl.next_n (-1) (atom "a"))));
    Alcotest.test_case "size" `Quick (fun () ->
      Alcotest.(check int) "size" 6
        (Ltl.size (Ltl.Always (Ltl.Or (Ltl.Not (atom "a"), Ltl.Next_n (3, atom "b"))))));
    Alcotest.test_case "signals" `Quick (fun () ->
      Alcotest.(check (list string)) "signals" [ "a"; "b"; "x" ]
        (Ltl.signals
           (Ltl.Until (atom "b", Ltl.And (atom "a", Ltl.Atom (Expr.Cmp (Expr.Eq, Expr.Avar "x", Expr.Int 1)))))));
    Alcotest.test_case "next_depth" `Quick (fun () ->
      Alcotest.(check int) "depth" 7
        (Ltl.next_depth
           (Ltl.Or (Ltl.Next_n (3, Ltl.Next_n (4, atom "a")), Ltl.Next_n (2, atom "b")))));
    Alcotest.test_case "max_eps" `Quick (fun () ->
      Alcotest.(check int) "eps" 170
        (Ltl.max_eps
           (Ltl.Or
              (Ltl.Next_event ({ tau = 1; eps = 170 }, atom "a"),
               Ltl.Next_event ({ tau = 2; eps = 20 }, atom "b")))));
    Alcotest.test_case "next_events in order" `Quick (fun () ->
      let f =
        Ltl.Until
          (Ltl.Next_event ({ tau = 1; eps = 10 }, atom "a"),
           Ltl.Next_event ({ tau = 2; eps = 20 }, atom "b"))
      in
      Alcotest.(check (list (pair int int)))
        "order" [ (1, 10); (2, 20) ]
        (List.map (fun ne -> (ne.Ltl.tau, ne.Ltl.eps)) (Ltl.next_events f))) ]

let nnf_predicate_cases =
  [ Alcotest.test_case "is_nnf accepts negated atoms" `Quick (fun () ->
      Alcotest.(check bool) "ok" true
        (Ltl.is_nnf (Ltl.And (Ltl.Not (atom "a"), atom "b"))));
    Alcotest.test_case "is_nnf rejects negated conjunction" `Quick (fun () ->
      Alcotest.(check bool) "no" false (Ltl.is_nnf (Ltl.Not (Ltl.And (atom "a", atom "b")))));
    Alcotest.test_case "is_nnf rejects implication" `Quick (fun () ->
      Alcotest.(check bool) "no" false (Ltl.is_nnf (Ltl.Implies (atom "a", atom "b"))));
    Alcotest.test_case "is_pushed accepts next over atom" `Quick (fun () ->
      Alcotest.(check bool) "ok" true
        (Ltl.is_pushed (Ltl.Until (Ltl.Next_n (1, Ltl.Not (atom "a")), Ltl.Next_n (2, atom "b")))));
    Alcotest.test_case "is_pushed rejects next over until" `Quick (fun () ->
      Alcotest.(check bool) "no" false
        (Ltl.is_pushed (Ltl.Next_n (1, Ltl.Until (atom "a", atom "b"))))) ]

let demote_cases =
  [ Alcotest.test_case "demote collapses boolean conjunction" `Quick (fun () ->
      Helpers.check_ltl "demote"
        (Ltl.Atom (Expr.And (v "ds", Expr.Cmp (Expr.Eq, Expr.Avar "indata", Expr.Int 0))))
        (Ltl.demote_booleans
           (Ltl.And (atom "ds", Ltl.Atom (Expr.Cmp (Expr.Eq, Expr.Avar "indata", Expr.Int 0))))));
    Alcotest.test_case "demote keeps temporal structure" `Quick (fun () ->
      let f = Ltl.Or (Ltl.Not (atom "a"), Ltl.Next_n (2, Ltl.And (atom "b", atom "c"))) in
      Helpers.check_ltl "demote"
        (Ltl.Or (Ltl.Atom (Expr.Not (v "a")), Ltl.Next_n (2, Ltl.Atom (Expr.And (v "b", v "c")))))
        (Ltl.demote_booleans f));
    Alcotest.test_case "demote rewrites boolean implication" `Quick (fun () ->
      Helpers.check_ltl "demote"
        (Ltl.Atom (Expr.Or (Expr.Not (v "a"), v "b")))
        (Ltl.demote_booleans (Ltl.Implies (atom "a", atom "b"))));
    Alcotest.test_case "demote leaves temporal implication" `Quick (fun () ->
      let f = Ltl.Implies (atom "a", Ltl.Next_n (1, atom "b")) in
      match Ltl.demote_booleans f with
      | Ltl.Implies (Ltl.Atom _, Ltl.Next_n (1, Ltl.Atom _)) -> ()
      | other -> Alcotest.failf "unexpected %a" Ltl.pp other) ]

let printing_cases =
  let check name expected f =
    Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (Ltl.to_string f))
  in
  [ check "next one" "next(a)" (Ltl.Next_n (1, atom "a"));
    check "next n" "next[17](a)" (Ltl.Next_n (17, atom "a"));
    check "nexte" "nexte[1,170](out != 0)"
      (Ltl.Next_event ({ tau = 1; eps = 170 }, Ltl.Atom (Expr.Cmp (Expr.Neq, Expr.Avar "out", Expr.Int 0))));
    check "until binds looser than or" "a || b until c"
      (Ltl.Until (Ltl.Or (atom "a", atom "b"), atom "c"));
    check "or under until right" "a until b || c"
      (Ltl.Until (atom "a", Ltl.Or (atom "b", atom "c")));
    check "parenthesised until under or" "a || (b until c)"
      (Ltl.Or (atom "a", Ltl.Until (atom "b", atom "c")));
    check "negated complex atom" "!(ds && indata == 0)"
      (Ltl.Not (Ltl.Atom (Expr.And (v "ds", Expr.Cmp (Expr.Eq, Expr.Avar "indata", Expr.Int 0)))));
    check "implication" "a -> next(b)" (Ltl.Implies (atom "a", Ltl.Next_n (1, atom "b")));
    check "always" "always(a -> b)" (Ltl.Always (Ltl.Implies (atom "a", atom "b")));
    check "nested unary" "!(next(a))" (Ltl.Not (Ltl.Next_n (1, atom "a"))) ]

let simplify_cases =
  let check name expected f =
    Alcotest.test_case name `Quick (fun () ->
      Helpers.check_ltl name expected (Ltl.simplify f))
  in
  [ check "and with true" (atom "a") (Ltl.And (atom "a", Ltl.tt));
    check "or with false" (atom "a") (Ltl.Or (Ltl.ff, atom "a"));
    check "until true" Ltl.tt (Ltl.Until (atom "a", Ltl.tt));
    check "release true" Ltl.tt (Ltl.Release (atom "a", Ltl.tt));
    check "always of constant" Ltl.tt (Ltl.Always Ltl.tt);
    check "next of constant" Ltl.ff (Ltl.Next_n (3, Ltl.ff));
    check "implies false antecedent" Ltl.tt (Ltl.Implies (Ltl.ff, atom "a")) ]

let suite =
  ("ltl",
   structure_cases @ nnf_predicate_cases @ demote_cases @ printing_cases @ simplify_cases)
