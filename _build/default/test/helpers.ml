(* Shared alcotest testables and qcheck generators. *)

open Tabv_psl

let ltl = Alcotest.testable Ltl.pp Ltl.equal
let expr_t = Alcotest.testable Expr.pp Expr.equal
let context = Alcotest.testable Context.pp Context.equal
let property = Alcotest.testable Property.pp Property.equal
let verdict = Alcotest.testable Semantics.pp_verdict Semantics.equal_verdict

let check_ltl = Alcotest.check ltl
let check_verdict = Alcotest.check Alcotest.(option verdict)

(* Signal alphabet used by generators: three booleans, two integers. *)
let bool_signals = [ "a"; "b"; "c" ]
let int_signals = [ "x"; "y" ]

open QCheck

let gen_bool_var = Gen.oneofl bool_signals
let gen_int_var = Gen.oneofl int_signals

let gen_arith =
  Gen.sized_size (Gen.int_bound 2) @@ Gen.fix (fun self n ->
    if n = 0 then
      Gen.oneof [ Gen.map (fun i -> Expr.Int i) (Gen.int_range (-4) 8);
                  Gen.map (fun v -> Expr.Avar v) gen_int_var ]
    else
      Gen.oneof
        [ Gen.map (fun i -> Expr.Int i) (Gen.int_range (-4) 8);
          Gen.map (fun v -> Expr.Avar v) gen_int_var;
          Gen.map2 (fun a b -> Expr.Add (a, b)) (self (n / 2)) (self (n / 2));
          Gen.map2 (fun a b -> Expr.Sub (a, b)) (self (n / 2)) (self (n / 2));
          Gen.map2 (fun a b -> Expr.Mul (a, b)) (self (n / 2)) (self (n / 2)) ])

let gen_cmp_op = Gen.oneofl [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]

(* Atoms kept simple (Var / Cmp) so printing round-trips structurally. *)
let gen_atom_expr =
  Gen.oneof
    [ Gen.map (fun v -> Expr.Var v) gen_bool_var;
      Gen.map3 (fun op a b -> Expr.Cmp (op, a, b)) gen_cmp_op gen_arith gen_arith ]

(* Boolean-layer expression including connectives (for Expr tests). *)
let gen_expr =
  Gen.sized_size (Gen.int_bound 3) @@ Gen.fix (fun self n ->
    if n = 0 then gen_atom_expr
    else
      Gen.oneof
        [ gen_atom_expr;
          Gen.map (fun e -> Expr.Not e) (self (n - 1));
          Gen.map2 (fun a b -> Expr.And (a, b)) (self (n / 2)) (self (n / 2));
          Gen.map2 (fun a b -> Expr.Or (a, b)) (self (n / 2)) (self (n / 2)) ])

(* General LTL formula (may contain Not / Implies anywhere). *)
let gen_ltl_general =
  Gen.sized_size (Gen.int_bound 5) @@ Gen.fix (fun self n ->
    if n = 0 then Gen.map (fun e -> Ltl.Atom e) gen_atom_expr
    else
      let sub = self (n / 2) in
      Gen.oneof
        [ Gen.map (fun e -> Ltl.Atom e) gen_atom_expr;
          Gen.map (fun p -> Ltl.Not p) (self (n - 1));
          Gen.map2 (fun p q -> Ltl.And (p, q)) sub sub;
          Gen.map2 (fun p q -> Ltl.Or (p, q)) sub sub;
          Gen.map2 (fun p q -> Ltl.Implies (p, q)) sub sub;
          Gen.map2 (fun k p -> Ltl.next_n k p) (Gen.int_range 1 3) (self (n - 1));
          Gen.map2 (fun p q -> Ltl.Until (p, q)) sub sub;
          Gen.map2 (fun p q -> Ltl.Release (p, q)) sub sub;
          Gen.map (fun p -> Ltl.Always p) (self (n - 1));
          Gen.map (fun p -> Ltl.Eventually p) (self (n - 1)) ])

(* NNF formula: negation only directly on atoms. *)
let gen_ltl_nnf =
  Gen.sized_size (Gen.int_bound 5) @@ Gen.fix (fun self n ->
    let atom =
      Gen.oneof
        [ Gen.map (fun e -> Ltl.Atom e) gen_atom_expr;
          Gen.map (fun e -> Ltl.Not (Ltl.Atom e)) gen_atom_expr ]
    in
    if n = 0 then atom
    else
      let sub = self (n / 2) in
      Gen.oneof
        [ atom;
          Gen.map2 (fun p q -> Ltl.And (p, q)) sub sub;
          Gen.map2 (fun p q -> Ltl.Or (p, q)) sub sub;
          Gen.map2 (fun k p -> Ltl.next_n k p) (Gen.int_range 1 3) (self (n - 1));
          Gen.map2 (fun p q -> Ltl.Until (p, q)) sub sub;
          Gen.map2 (fun p q -> Ltl.Release (p, q)) sub sub;
          Gen.map (fun p -> Ltl.Always p) (self (n - 1));
          Gen.map (fun p -> Ltl.Eventually p) (self (n - 1)) ])

let gen_env =
  let open Gen in
  let* bools = flatten_l (List.map (fun _ -> bool) bool_signals) in
  let* ints = flatten_l (List.map (fun _ -> int_range (-2) 6) int_signals) in
  return
    (List.map2 (fun name b -> (name, Expr.VBool b)) bool_signals bools
     @ List.map2 (fun name i -> (name, Expr.VInt i)) int_signals ints)

(* Cycle-accurate trace: one entry per clock event, period 10 ns. *)
let gen_trace =
  let open Gen in
  let* len = int_range 1 30 in
  let* envs = list_repeat len gen_env in
  return (Trace.cycle_trace ~period:10 envs)

let arb_ltl_general = make ~print:Ltl.to_string gen_ltl_general
let arb_ltl_nnf = make ~print:Ltl.to_string gen_ltl_nnf
let arb_expr = make ~print:Expr.to_string gen_expr

let arb_ltl_and_trace =
  make
    ~print:(fun (t, trace) ->
      Printf.sprintf "%s\non trace:\n%s" (Ltl.to_string t)
        (Format.asprintf "%a" Trace.pp trace))
    Gen.(pair gen_ltl_general gen_trace)

let arb_nnf_and_trace =
  make
    ~print:(fun (t, trace) ->
      Printf.sprintf "%s\non trace:\n%s" (Ltl.to_string t)
        (Format.asprintf "%a" Trace.pp trace))
    Gen.(pair gen_ltl_nnf gen_trace)

(* Wrap a qcheck property as an alcotest case. *)
let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* NNF formula that may contain next_eps^tau (eps on the 10 ns grid),
   for timed progression/semantics equivalence tests. *)
let gen_ltl_timed_nnf =
  Gen.sized_size (Gen.int_bound 5) @@ Gen.fix (fun self n ->
    let atom =
      Gen.oneof
        [ Gen.map (fun e -> Ltl.Atom e) gen_atom_expr;
          Gen.map (fun e -> Ltl.Not (Ltl.Atom e)) gen_atom_expr ]
    in
    if n = 0 then atom
    else
      let sub = self (n / 2) in
      let nexte =
        let open Gen in
        let* tau = int_range 1 4 in
        let* eps = Gen.map (fun k -> 10 * k) (int_range 1 6) in
        let* body = self (n - 1) in
        return (Ltl.Next_event ({ Ltl.tau; eps }, body))
      in
      Gen.oneof
        [ atom;
          nexte;
          Gen.map2 (fun p q -> Ltl.And (p, q)) sub sub;
          Gen.map2 (fun p q -> Ltl.Or (p, q)) sub sub;
          Gen.map2 (fun k p -> Ltl.next_n k p) (Gen.int_range 1 3) (self (n - 1));
          Gen.map2 (fun p q -> Ltl.Until (p, q)) sub sub;
          Gen.map2 (fun p q -> Ltl.Release (p, q)) sub sub;
          Gen.map (fun p -> Ltl.Always p) (self (n - 1));
          Gen.map (fun p -> Ltl.Eventually p) (self (n - 1)) ])

(* Timed trace with irregular (but grid-aligned) event spacing, like a
   transaction stream. *)
let gen_timed_trace =
  let open Gen in
  let* len = int_range 1 25 in
  let* gaps = list_repeat len (int_range 1 4) in
  let* envs = list_repeat len gen_env in
  let entries =
    List.rev
      (snd
         (List.fold_left2
            (fun (time, acc) gap env ->
              let time = time + (10 * gap) in
              (time, { Trace.time; env } :: acc))
            (0, []) gaps envs))
  in
  return (Trace.of_list entries)

let arb_timed_nnf_and_trace =
  make
    ~print:(fun (t, trace) ->
      Printf.sprintf "%s\non trace:\n%s" (Ltl.to_string t)
        (Format.asprintf "%a" Trace.pp trace))
    Gen.(pair gen_ltl_timed_nnf gen_timed_trace)
