open Tabv_psl

let b name v = (name, Expr.VBool v)
let i name v = (name, Expr.VInt v)

(* Clock-event trace, period 10 ns. *)
let trace_of rows = Trace.cycle_trace ~period:10 rows

let check name expected trace formula =
  Alcotest.test_case name `Quick (fun () ->
    Alcotest.check Helpers.verdict name expected
      (Semantics.eval trace (Parser.formula_only formula)))

let t3 =
  trace_of
    [ [ b "a" true; b "r" false ];
      [ b "a" true; b "r" false ];
      [ b "a" false; b "r" true ] ]

let basic_cases =
  [ check "atom true" Semantics.True t3 "a";
    check "atom false" Semantics.False t3 "r";
    check "not" Semantics.True t3 "!r";
    check "and" Semantics.False t3 "a && r";
    check "or" Semantics.True t3 "a || r";
    check "implication" Semantics.True t3 "r -> a";
    check "next" Semantics.True t3 "next(a)";
    check "next two" Semantics.False t3 "next[2](a)";
    check "next beyond end" Semantics.Unknown t3 "next[5](a)";
    check "until satisfied" Semantics.True t3 "a until r";
    check "until fails when lhs fails first" Semantics.False t3 "r until (a && r)";
    check "until never reached" Semantics.False t3 "a until (a && r)";
    check "until pending at end" Semantics.Unknown t3 "a until (r && next(r))";
    check "release never released stays pending" Semantics.Unknown t3
      "(a && r) release (a || r)";
    check "release satisfied by release point" Semantics.True t3 "r release (a || r)";
    check "release fails when payload fails" Semantics.False t3 "r release a";
    check "release violated" Semantics.False t3 "false release a";
    check "always violated" Semantics.False t3 "always(a)";
    check "always never true on finite trace" Semantics.Unknown t3 "always(a || r)";
    check "eventually true" Semantics.True t3 "eventually(r)";
    check "eventually unknown" Semantics.Unknown t3 "eventually(a && r)" ]

(* Timed (transaction-event) traces for nexte. *)
let timed rows = Trace.of_list (List.map (fun (t, env) -> { Trace.time = t; env }) rows)

let tlm_trace =
  timed
    [ (0, [ b "ds" true; b "rdy" false ]);
      (170, [ b "ds" false; b "rdy" true ]);
      (200, [ b "ds" false; b "rdy" false ]) ]

let nexte_cases =
  [ check "nexte hit" Semantics.True tlm_trace "nexte[1,170](rdy)";
    check "nexte operand false" Semantics.False tlm_trace "nexte[1,170](ds)";
    check "nexte missed instant" Semantics.False tlm_trace "nexte[1,100](rdy)";
    check "nexte beyond trace" Semantics.Unknown tlm_trace "nexte[1,500](rdy)";
    check "nexte chain" Semantics.False tlm_trace "nexte[1,170](nexte[2,10](rdy))";
    check "nexte chain hit" Semantics.True tlm_trace "nexte[1,170](nexte[2,30](!rdy))";
    Alcotest.test_case "paper q3 passes on equivalent trace" `Quick (fun () ->
      (* ds at 0 and rdy at 170 with intermediate unrelated events:
         the evaluation point at exactly 170 exists, so q3 holds. *)
      let trace =
        timed
          [ (0, [ b "ds" true; b "rdy" false ]);
            (40, [ b "ds" false; b "rdy" false ]);
            (170, [ b "ds" false; b "rdy" true ]) ]
      in
      let q3 = Parser.formula_only "always(!ds || nexte[1,170](rdy))" in
      Alcotest.check Helpers.verdict "q3" Semantics.Unknown (Semantics.eval trace q3);
      Alcotest.(check bool) "holds" true (Semantics.holds trace q3));
    Alcotest.test_case "paper q3 fails when transaction is late" `Quick (fun () ->
      let trace =
        timed
          [ (0, [ b "ds" true; b "rdy" false ]);
            (180, [ b "ds" false; b "rdy" true ]) ]
      in
      let q3 = Parser.formula_only "always(!ds || nexte[1,170](rdy))" in
      Alcotest.(check bool) "violated" true (Semantics.violated trace q3)) ]

let monotonic_cases =
  [ Alcotest.test_case "non-monotonic trace rejected" `Quick (fun () ->
      match timed [ (0, []); (0, []) ] with
      | _ -> Alcotest.fail "expected Non_monotonic"
      | exception Trace.Non_monotonic { index = 1; _ } -> ());
    Alcotest.test_case "cycle trace times" `Quick (fun () ->
      let t = trace_of [ []; []; [] ] in
      Alcotest.(check (list int)) "times" [ 0; 10; 20 ]
        (List.map (fun e -> e.Trace.time) (Trace.to_list t)));
    Alcotest.test_case "index_at_time" `Quick (fun () ->
      let t = trace_of [ []; []; [] ] in
      Alcotest.(check (option int)) "found" (Some 2) (Trace.index_at_time t ~from:0 ~time:20);
      Alcotest.(check (option int)) "not found" None (Trace.index_at_time t ~from:0 ~time:15);
      Alcotest.(check (option int)) "respects from" None (Trace.index_at_time t ~from:3 ~time:20));
    Alcotest.test_case "first_index_after" `Quick (fun () ->
      let t = trace_of [ []; []; [] ] in
      Alcotest.(check (option int)) "after 5" (Some 1) (Trace.first_index_after t ~from:0 ~time:5);
      Alcotest.(check (option int)) "after 20" None (Trace.first_index_after t ~from:0 ~time:20)) ]

let kleene_cases =
  [ Helpers.qtest "and/or duality" Helpers.arb_ltl_and_trace (fun (f, trace) ->
      let lhs = Semantics.eval trace (Ltl.Not (Ltl.And (f, f))) in
      let rhs = Semantics.eval trace (Ltl.Or (Ltl.Not f, Ltl.Not f)) in
      Semantics.equal_verdict lhs rhs);
    Helpers.qtest "until unfolding law" Helpers.arb_nnf_and_trace (fun (f, trace) ->
      (* a U b == b or (a and next(a U b)) on every trace. *)
      let u = Ltl.Until (f, Ltl.Not f) in
      let unfolded =
        Ltl.Or (Ltl.Not f, Ltl.And (f, Ltl.Next_n (1, u)))
      in
      (* The unfolding may be Unknown where the direct evaluation
         already decided at the last trace position; accept equal or
         the unfolded side being weaker. *)
      let direct = Semantics.eval trace u in
      let unf = Semantics.eval trace unfolded in
      Semantics.equal_verdict direct unf || unf = Semantics.Unknown);
    Helpers.qtest "always entails first position" Helpers.arb_nnf_and_trace
      (fun (f, trace) ->
        match Semantics.eval trace (Ltl.Always f) with
        | Semantics.True -> Semantics.eval trace f = Semantics.True
        | Semantics.False | Semantics.Unknown -> true) ]

let suite =
  ("semantics", basic_cases @ nexte_cases @ monotonic_cases @ kleene_cases)
