open Tabv_psl
open Tabv_sim

(* Named-clock contexts: parsing, mapping, and an end-to-end dual-clock
   design. *)

let case name f = Alcotest.test_case name `Quick f

let parse_cases =
  [ case "named posedge context" (fun () ->
      let _, c = Parser.formula "a @clkB_pos" in
      Alcotest.check Helpers.context "ctx"
        (Context.Clock (Context.Named_edge ("clkB", Context.Posedge))) c);
    case "named negedge context" (fun () ->
      let _, c = Parser.formula "a @mem_clk_neg" in
      Alcotest.check Helpers.context "ctx"
        (Context.Clock (Context.Named_edge ("mem_clk", Context.Negedge))) c);
    case "named any-edge context" (fun () ->
      let _, c = Parser.formula "a @clkB" in
      Alcotest.check Helpers.context "ctx"
        (Context.Clock (Context.Named_edge ("clkB", Context.Any_edge))) c);
    case "gated named context" (fun () ->
      let _, c = Parser.formula "a @(clkB_pos && en)" in
      Alcotest.check Helpers.context "ctx"
        (Context.Clock (Context.Named_edge_and ("clkB", Context.Posedge, Expr.Var "en")))
        c);
    case "named contexts print and re-parse" (fun () ->
      List.iter
        (fun source ->
          let _, c = Parser.formula source in
          let printed = "a " ^ Context.to_string c in
          let _, reparsed = Parser.formula printed in
          Alcotest.check Helpers.context source c reparsed)
        [ "a @clkB_pos"; "a @clkB_neg"; "a @clkB"; "a @(clkB_pos && en)" ]);
    case "clock_name accessor" (fun () ->
      let _, c = Parser.formula "a @clkB_pos" in
      Alcotest.(check (option string)) "named" (Some "clkB") (Context.clock_name c);
      let _, c = Parser.formula "a @clk_pos" in
      Alcotest.(check (option string)) "default" None (Context.clock_name c)) ]

let mapping_cases =
  [ case "named context maps to the base transaction context" (fun () ->
      let p = Parser.property_exn ~name:"p" "always(!a || next(b)) @clkB_pos" in
      let report =
        Tabv_core.Methodology.abstract ~clock_period:10
          ~clock_periods:[ ("clkB", 20) ] p
      in
      match report.Tabv_core.Methodology.output with
      | Some q ->
        Alcotest.check Helpers.context "ctx" (Context.Transaction Context.Base_trans)
          q.Property.context;
        (* eps uses the named clock's period as given. *)
        Alcotest.(check (list int)) "eps" [ 20 ]
          (List.map (fun (ne : Ltl.next_event) -> ne.Ltl.eps)
             (Ltl.next_events q.Property.formula))
      | None -> Alcotest.fail "deleted");
    case "mixed-clock property set gets per-clock eps" (fun () ->
      let properties =
        [ Parser.property_exn ~name:"fast" "always(!a || next[2](b)) @clk_pos";
          Parser.property_exn ~name:"slow" "always(!a || next[2](b)) @clkB_pos" ]
      in
      let reports =
        Tabv_core.Methodology.abstract_all ~clock_period:10
          ~clock_periods:[ ("clkB", 40) ] properties
      in
      let eps_of r =
        match r.Tabv_core.Methodology.output with
        | Some q ->
          List.map (fun (ne : Ltl.next_event) -> ne.Ltl.eps)
            (Ltl.next_events q.Property.formula)
        | None -> []
      in
      Alcotest.(check (list (list int))) "eps" [ [ 20 ]; [ 80 ] ]
        (List.map eps_of reports));
    case "missing named period rejected" (fun () ->
      let p = Parser.property_exn ~name:"p" "always(a) @clkB_pos" in
      match Tabv_core.Methodology.abstract ~clock_period:10 p with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

(* End to end: a counter clocked by clkB (period 20 ns) while the
   default clock runs at 10 ns; the property samples clkB edges only. *)
let e2e_cases =
  [ case "checker samples the named clock" (fun () ->
      let kernel = Kernel.create () in
      let clk_a = Clock.create kernel ~name:"clkA" ~period:10 () in
      let clk_b = Clock.create kernel ~name:"clkB" ~period:20 () in
      let counter = Signal.create kernel ~name:"cnt" 0 in
      Process.method_process kernel ~name:"counter" ~initialize:false
        ~sensitivity:[ Clock.posedge clk_b ]
        (fun () -> Signal.write counter (Signal.read counter + 1));
      (* On clkB's grid the counter increases by exactly 1 per edge; on
         clkA's grid it would stutter (two edges per increment). *)
      let property =
        Parser.property_exn ~name:"mono"
          "always (!(cnt = 2) || next(cnt = 3)) @clkB_pos"
      in
      let wrong_clock =
        Parser.property_exn ~name:"stutter"
          "always (!(cnt = 2) || next(cnt = 3)) @clk_pos"
      in
      let lookup name =
        match name with
        | "cnt" -> Some (Expr.VInt (Signal.read counter))
        | _ -> None
      in
      let named =
        Tabv_checker.Rtl_checker.attach ~clocks:[ ("clkB", clk_b) ] kernel clk_a
          property ~lookup
      in
      let default =
        Tabv_checker.Rtl_checker.attach kernel clk_a wrong_clock ~lookup
      in
      Kernel.schedule_at kernel ~time:200 (fun () -> Kernel.stop kernel);
      ignore (Kernel.run kernel);
      Alcotest.(check int) "named-clock property holds" 0
        (List.length (Tabv_checker.Rtl_checker.failures named));
      (* The same formula on the fast default clock sees cnt=2 on two
         consecutive edges and fails. *)
      Alcotest.(check bool) "default-clock property stutters" true
        (Tabv_checker.Rtl_checker.failures default <> []));
    case "unknown named clock rejected" (fun () ->
      let kernel = Kernel.create () in
      let clk = Clock.create kernel ~name:"clk" ~period:10 () in
      let p = Parser.property_exn ~name:"p" "always(a) @nosuch_pos" in
      match Tabv_checker.Rtl_checker.attach kernel clk p ~lookup:(fun _ -> None) with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

let suite = ("multiclock", parse_cases @ mapping_cases @ e2e_cases)
