open Tabv_duv

let check_hex name expected actual =
  Alcotest.(check string) name (Printf.sprintf "%016Lx" expected)
    (Printf.sprintf "%016Lx" actual)

let case name f = Alcotest.test_case name `Quick f

(* Classic worked example (Stallings) and NIST-style known-answer
   vectors that appear in virtually every DES test suite. *)
let known_answer_vectors =
  [ (0x133457799BBCDFF1L, 0x0123456789ABCDEFL, 0x85E813540F0AB405L);
    (0x7CA110454A1A6E57L, 0x01A1D6D039776742L, 0x690F5B0D9A26939BL);
    (0x0131D9619DC1376EL, 0x5CD54CA83DEF57DAL, 0x7A389D10354BD271L);
    (0x07A1133E4A0B2686L, 0x0248D43806F67172L, 0x868EBB51CAB4599AL);
    (0x04B915BA43FEB5B6L, 0x42FD443059577FA2L, 0xAF37FB421F8C4095L) ]

let kat_cases =
  List.mapi
    (fun i (key, plaintext, ciphertext) ->
      case (Printf.sprintf "known answer %d" (i + 1)) (fun () ->
        check_hex "encrypt" ciphertext (Des.encrypt ~key plaintext);
        check_hex "decrypt" plaintext (Des.decrypt ~key ciphertext)))
    known_answer_vectors

let structure_cases =
  [ case "sixteen round keys of 48 bits" (fun () ->
      let keys = Des.round_keys 0x133457799BBCDFF1L in
      Alcotest.(check int) "count" 16 (Array.length keys);
      Array.iter
        (fun k ->
          Alcotest.(check bool) "fits in 48 bits" true
            (Int64.logand k 0xFFFF000000000000L = 0L))
        keys);
    case "first round key of the classic example" (fun () ->
      (* K1 = 000110 110000 001011 101111 111111 000111 000001 110010 *)
      let keys = Des.round_keys 0x133457799BBCDFF1L in
      check_hex "k1" 0x1B02EFFC7072L keys.(0));
    case "round-by-round equals whole-block encrypt" (fun () ->
      let key = 0x0123456789ABCDEFL and block = 0x4E6F772069732074L in
      let keys = Des.round_keys key in
      let state = ref (Des.initial_permutation block) in
      for i = 0 to 15 do
        state := Des.round !state ~key:keys.(i)
      done;
      check_hex "composed" (Des.encrypt ~key block) (Des.final_swap_permutation !state));
    case "process dispatches on mode" (fun () ->
      let key = 0x133457799BBCDFF1L and block = 0x0123456789ABCDEFL in
      check_hex "encrypt mode" (Des.encrypt ~key block)
        (Des.process ~decrypt:false ~key block);
      check_hex "decrypt mode" (Des.decrypt ~key block)
        (Des.process ~decrypt:true ~key block)) ]

let property_cases =
  let arb_block =
    QCheck.make
      ~print:(Printf.sprintf "%016Lx")
      QCheck.Gen.(map2 (fun a b -> Int64.logor (Int64.shift_left (Int64.of_int a) 32)
                           (Int64.logand (Int64.of_int b) 0xFFFFFFFFL))
                    (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))
  in
  [ Helpers.qtest ~count:100 "decrypt inverts encrypt"
      QCheck.(pair arb_block arb_block)
      (fun (key, block) -> Des.decrypt ~key (Des.encrypt ~key block) = block);
    Helpers.qtest ~count:100 "flipping a plaintext bit changes the ciphertext"
      QCheck.(pair arb_block arb_block)
      (fun (key, block) ->
        Des.encrypt ~key block <> Des.encrypt ~key (Int64.logxor block 1L));
    Helpers.qtest ~count:50 "complementation property"
      QCheck.(pair arb_block arb_block)
      (fun (key, block) ->
        (* DES(~k, ~p) = ~DES(k, p) *)
        Des.encrypt ~key:(Int64.lognot key) (Int64.lognot block)
        = Int64.lognot (Des.encrypt ~key block)) ]

let suite = ("des", kat_cases @ structure_cases @ property_cases)
