open Tabv_psl

(* Bounded SERE suffix implication, desugared to LTL at parse time. *)

let case name f = Alcotest.test_case name `Quick f
let atom s = Ltl.Atom (Expr.Var s)

let parses name source expected =
  case name (fun () ->
    Helpers.check_ltl name expected (Parser.formula_only source))

let rejects name source =
  case name (fun () ->
    match Parser.formula_only source with
    | _ -> Alcotest.failf "expected parse error for %S" source
    | exception Parser.Parse_error _ -> ())

let structure_cases =
  [ parses "single-element SERE" "{a} |-> b" (Ltl.Implies (atom "a", atom "b"));
    parses "concatenation shifts by one cycle" "{a; b} |-> c"
      (Ltl.Implies (atom "a", Ltl.Next_n (1, Ltl.Implies (atom "b", atom "c"))));
    parses "non-overlapping implication" "{a} |=> b"
      (Ltl.Implies (atom "a", Ltl.Next_n (1, atom "b")));
    parses "alternation becomes conjunction of expansions" "{a | b} |-> c"
      (Ltl.And (Ltl.Implies (atom "a", atom "c"), Ltl.Implies (atom "b", atom "c")));
    parses "fixed repetition unrolls" "{a[*2]} |-> b"
      (Ltl.Implies (atom "a", Ltl.Next_n (1, Ltl.Implies (atom "a", atom "b"))));
    rejects "empty repetition rejected" "{a[*0]} |-> b";
    rejects "reversed repetition rejected" "{a[*3..2]} |-> b";
    rejects "temporal SERE element rejected" "{next(a)} |-> b";
    rejects "SERE without implication" "{a; b}" ]

(* Semantics checked exhaustively against hand-expanded equivalents. *)
let semantic_cases =
  let equivalent name sere expanded =
    case name (fun () ->
      match
        Exhaustive.equivalent ~signals:[ "a"; "b"; "c" ] ~max_depth:5
          (Parser.formula_only sere) (Parser.formula_only expanded)
      with
      | Exhaustive.Holds -> ()
      | Exhaustive.Counterexample trace ->
        Alcotest.failf "%s refuted:\n%s" name (Format.asprintf "%a" Trace.pp trace))
  in
  [ equivalent "three-step sequence" "{a; b; c} |-> b"
      "a -> next(b -> next(c -> b))";
    equivalent "ranged repetition" "{a[*1..2]; b} |-> c"
      "(a -> next(b -> c)) && (a -> next(a -> next(b -> c)))";
    equivalent "alternation under concatenation" "{ {a | b}; c } |-> b"
      "(a -> next(c -> b)) && (b -> next(c -> b))";
    equivalent "non-overlapping vs overlapping shift" "{a; b} |=> c"
      "{a; b; true} |-> c" ]

(* SEREs flow through the abstraction pipeline like any LTL. *)
let methodology_cases =
  [ case "a SERE property abstracts to nexte obligations" (fun () ->
      let p =
        Parser.property_exn ~name:"s" "always({ds; !ds; !ds} |-> rdy_early) @clk_pos"
      in
      let report = Tabv_core.Methodology.abstract ~clock_period:10 p in
      match report.Tabv_core.Methodology.output with
      | Some q ->
        (* Two concatenation steps: nexte at 10 and 20 ns. *)
        Alcotest.(check (list int)) "eps" [ 10; 20 ]
          (List.map
             (fun (ne : Ltl.next_event) -> ne.Ltl.eps)
             (Ltl.next_events q.Property.formula))
      | None -> Alcotest.fail "deleted");
    case "a SERE property checks end to end on DES56 RTL" (fun () ->
      (* After a strobe, the strobe stays low for the next two cycles
         (latency 17 with a 2-cycle minimum gap in the testbench). *)
      let p =
        Parser.property_exn ~name:"sere1" "always({ds; true} |-> !ds) @clk_pos"
      in
      let ops = Tabv_duv.Workload.des56 ~seed:17 ~count:10 () in
      let result = Tabv_duv.Testbench.run_des56_rtl ~properties:[ p ] ops in
      Alcotest.(check int) "no failures" 0 (Tabv_duv.Testbench.total_failures result)) ]

let suite = ("sere", structure_cases @ semantic_cases @ methodology_cases)
