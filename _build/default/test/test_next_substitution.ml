open Tabv_psl
open Tabv_core

let run ?(clock_period = 10) source =
  Next_substitution.run ~clock_period (Parser.formula_only source)

let converts name ?clock_period source expected =
  Alcotest.test_case name `Quick (fun () ->
    let result, _ = run ?clock_period source in
    Helpers.check_ltl name (Parser.formula_only expected) result)

let unit_cases =
  [ converts "atom untouched" "a" "a";
    converts "single chain" "next[17](a)" "nexte[1,170](a)";
    converts "tau counts left to right" "next(a) until next[2](b)"
      "nexte[1,10](a) until nexte[2,20](b)";
    converts "negated atom operand" "next[3](!a)" "nexte[1,30](!a)";
    converts "custom clock period" ~clock_period:5 "next[4](a)" "nexte[1,20](a)";
    converts "three chains" "next(a) && (next[2](b) || next[3](c))"
      "nexte[1,10](a) && (nexte[2,20](b) || nexte[3,30](c))";
    converts "existing nexte untouched" "nexte[1,170](a) && next(b)"
      "nexte[1,170](a) && nexte[1,10](b)";
    converts "paper q2 inner" "always(!ds || (next(!ds) until next[2](rdy)))"
      "always(!ds || (nexte[1,10](!ds) until nexte[2,20](rdy)))" ]

let report_cases =
  [ Alcotest.test_case "substitution report" `Quick (fun () ->
      let _, substs = run "next(a) until next[2](b)" in
      Alcotest.(check (list (triple int int int)))
        "substs"
        [ (1, 1, 10); (2, 2, 20) ]
        (List.map
           (fun s ->
             (s.Next_substitution.tau, s.Next_substitution.cycles, s.Next_substitution.eps))
           substs));
    Alcotest.test_case "no substitutions on until-only formula" `Quick (fun () ->
      let _, substs = run "always(a until b)" in
      Alcotest.(check int) "none" 0 (List.length substs)) ]

let error_cases =
  [ Alcotest.test_case "rejects unpushed formula" `Quick (fun () ->
      match run "next(a && b)" with
      | _ -> Alcotest.fail "expected Not_pushed"
      | exception Next_substitution.Not_pushed _ -> ());
    Alcotest.test_case "rejects non-positive clock period" `Quick (fun () ->
      match Next_substitution.run ~clock_period:0 (Parser.formula_only "a") with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

let property_cases =
  [ Helpers.qtest "taus are 1..m in order" Helpers.arb_ltl_nnf (fun f ->
      let pushed = Push_ahead.run f in
      let _, substs = Next_substitution.run ~clock_period:10 pushed in
      List.mapi (fun i _ -> i + 1) substs
      = List.map (fun s -> s.Next_substitution.tau) substs);
    Helpers.qtest "eps = cycles * period" Helpers.arb_ltl_nnf (fun f ->
      let pushed = Push_ahead.run f in
      let _, substs = Next_substitution.run ~clock_period:7 pushed in
      List.for_all (fun s -> s.Next_substitution.eps = 7 * s.Next_substitution.cycles) substs);
    Helpers.qtest "no next[n] remains" Helpers.arb_ltl_nnf (fun f ->
      let result, _ = Next_substitution.run ~clock_period:10 (Push_ahead.run f) in
      let rec no_next = function
        | Ltl.Next_n _ -> false
        | Ltl.Atom _ -> true
        | Ltl.Not p | Ltl.Next_event (_, p) | Ltl.Always p | Ltl.Eventually p -> no_next p
        | Ltl.And (p, q) | Ltl.Or (p, q) | Ltl.Implies (p, q)
        | Ltl.Until (p, q) | Ltl.Release (p, q) -> no_next p && no_next q
      in
      no_next result) ]

let suite = ("next_substitution", unit_cases @ report_cases @ error_cases @ property_cases)
