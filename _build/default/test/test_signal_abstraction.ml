open Tabv_psl
open Tabv_core

let run ?(removed = [ "s" ]) source =
  Signal_abstraction.run ~removed (Parser.formula_only source)

let rewrites name ?removed source expected =
  Alcotest.test_case name `Quick (fun () ->
    let result = run ?removed source in
    match result.Signal_abstraction.formula with
    | None -> Alcotest.failf "property was deleted"
    | Some f -> Helpers.check_ltl name (Parser.formula_only expected) f)

let deletes name ?removed source =
  Alcotest.test_case name `Quick (fun () ->
    let result = run ?removed source in
    Alcotest.(check bool) "deleted" true (result.Signal_abstraction.formula = None))

let classified name ?removed source expected =
  Alcotest.test_case name `Quick (fun () ->
    let result = run ?removed source in
    let to_string = function
      | Signal_abstraction.Unchanged -> "unchanged"
      | Signal_abstraction.Weakened -> "weakened"
      | Signal_abstraction.Needs_review -> "needs_review"
    in
    Alcotest.(check string) name (to_string expected)
      (to_string result.Signal_abstraction.classification))

let rule_cases =
  [ rewrites "conjunct dropped right" "a && s" "a";
    rewrites "conjunct dropped left" "s && a" "a";
    rewrites "disjunct dropped right" "a || s" "a";
    rewrites "disjunct dropped left" "s || a" "a";
    rewrites "until rhs dropped" "a until s" "a";
    rewrites "until lhs dropped" "s until a" "a";
    deletes "release rhs dropped deletes" "a release s";
    rewrites "release lhs dropped" "s release a" "a";
    deletes "atom alone" "s";
    deletes "negated atom alone" "!s";
    deletes "next of abstracted atom" "next[4](s)";
    deletes "always of abstracted atom" "always(s)";
    deletes "eventually of abstracted atom" "eventually(s)";
    rewrites "nested propagation" "always(a || next(s))" "always(a)";
    rewrites "comparison mentioning signal"
      ~removed:[ "cnt" ] "a && cnt == 3" "a";
    deletes "both operands abstracted" "s && next(s)";
    rewrites "untouched formula" "always(a until b)" "always(a until b)" ]

let classification_cases =
  [ classified "no abstraction" "always(a)" Signal_abstraction.Unchanged;
    classified "conjunct drop is weakening" "always(a && s)" Signal_abstraction.Weakened;
    classified "two conjunct drops stay weakened"
      ~removed:[ "s"; "t" ] "always(a && s && t)" Signal_abstraction.Weakened;
    classified "disjunct drop needs review" "always(a || s)" Signal_abstraction.Needs_review;
    classified "until drop needs review" "always(a until s)" Signal_abstraction.Needs_review;
    classified "weakening under disjunction stays weakened" "(a && s) || (b && !s)"
      Signal_abstraction.Weakened;
    classified "mixed needs review" "(a && s) && (b || s)" Signal_abstraction.Needs_review;
    classified "deleted property flagged for review" "s" Signal_abstraction.Needs_review ]

let paper_cases =
  [ Alcotest.test_case "paper p3 signal abstraction" `Quick (fun () ->
      (* p3 without its clock context, after NNF (it is already NNF). *)
      let p3 =
        Parser.formula_only
          "always (!ds || (next[15](rdy_next_next_cycle) && next[16](rdy_next_cycle) && next[17](rdy)))"
      in
      let result =
        Signal_abstraction.run
          ~removed:[ "rdy_next_cycle"; "rdy_next_next_cycle" ] p3
      in
      (match result.Signal_abstraction.formula with
       | Some f ->
         Helpers.check_ltl "survivor"
           (Parser.formula_only "always (!ds || next[17](rdy))") f
       | None -> Alcotest.fail "p3 must survive");
      Alcotest.(check bool) "weakened (safe reuse)" true
        (result.Signal_abstraction.classification = Signal_abstraction.Weakened);
      Alcotest.(check int) "one rule applied" 1
        (List.length result.Signal_abstraction.applied)) ]

let property_cases =
  let removed = [ "a" ] in
  [ Helpers.qtest "result never mentions removed signals" Helpers.arb_ltl_nnf (fun f ->
      match (Signal_abstraction.run ~removed f).Signal_abstraction.formula with
      | None -> true
      | Some f' -> not (List.mem "a" (Ltl.signals f')));
    Helpers.qtest "no-op when signal absent" Helpers.arb_ltl_nnf (fun f ->
      match (Signal_abstraction.run ~removed:[ "zz" ] f).Signal_abstraction.formula with
      | Some f' -> Ltl.equal f f'
      | None -> false);
    Helpers.qtest "weakened results are logical consequences"
      Helpers.arb_nnf_and_trace (fun (f, trace) ->
        let result = Signal_abstraction.run ~removed f in
        match result.Signal_abstraction.formula,
              result.Signal_abstraction.classification with
        | Some f', Signal_abstraction.Weakened ->
          (* If f holds (is not violated) and is in fact True, then f'
             must not be False on the same trace. *)
          (match Semantics.eval trace f with
           | Semantics.True -> Semantics.eval trace f' <> Semantics.False
           | Semantics.False | Semantics.Unknown -> true)
        | _ -> true) ]

let suite =
  ("signal_abstraction", rule_cases @ classification_cases @ paper_cases @ property_cases)
