open Tabv_psl

let lookup_of bindings name = List.assoc_opt name bindings

let env1 =
  lookup_of
    [ ("ds", Expr.VBool true);
      ("rdy", Expr.VBool false);
      ("indata", Expr.VInt 0);
      ("out", Expr.VInt 42) ]

let check_eval name expected e =
  Alcotest.test_case name `Quick (fun () ->
    Alcotest.(check bool) name expected (Expr.eval env1 e))

let check_signals name expected e =
  Alcotest.test_case name `Quick (fun () ->
    Alcotest.(check (list string)) name expected (Expr.signals e))

let eval_cases =
  [ check_eval "var true" true (Expr.Var "ds");
    check_eval "var false" false (Expr.Var "rdy");
    check_eval "not" false (Expr.Not (Expr.Var "ds"));
    check_eval "and" false (Expr.And (Expr.Var "ds", Expr.Var "rdy"));
    check_eval "or" true (Expr.Or (Expr.Var "ds", Expr.Var "rdy"));
    check_eval "eq on int" true (Expr.Cmp (Expr.Eq, Expr.Avar "indata", Expr.Int 0));
    check_eval "neq on int" true (Expr.Cmp (Expr.Neq, Expr.Avar "out", Expr.Int 0));
    check_eval "lt" false (Expr.Cmp (Expr.Lt, Expr.Avar "out", Expr.Int 42));
    check_eval "le" true (Expr.Cmp (Expr.Le, Expr.Avar "out", Expr.Int 42));
    check_eval "gt" false (Expr.Cmp (Expr.Gt, Expr.Avar "out", Expr.Int 42));
    check_eval "ge" true (Expr.Cmp (Expr.Ge, Expr.Avar "out", Expr.Int 42));
    check_eval "arith add mul"
      true
      (Expr.Cmp (Expr.Eq, Expr.Add (Expr.Avar "out", Expr.Mul (Expr.Int 2, Expr.Int 4)), Expr.Int 50));
    check_eval "arith sub" true (Expr.Cmp (Expr.Eq, Expr.Sub (Expr.Avar "out", Expr.Int 2), Expr.Int 40));
    check_eval "int signal as bool" false (Expr.Var "indata");
    check_eval "nonzero int as bool" true (Expr.Var "out") ]

let error_cases =
  [ Alcotest.test_case "unbound signal raises" `Quick (fun () ->
      Alcotest.check_raises "unbound"
        (Expr.Eval_error "unbound signal \"nosuch\"")
        (fun () -> ignore (Expr.eval env1 (Expr.Var "nosuch"))));
    Alcotest.test_case "bool in arith position raises" `Quick (fun () ->
      match Expr.eval env1 (Expr.Cmp (Expr.Eq, Expr.Avar "ds", Expr.Int 1)) with
      | exception Expr.Eval_error _ -> ()
      | _ -> Alcotest.fail "expected Eval_error") ]

let signal_cases =
  [ check_signals "var" [ "ds" ] (Expr.Var "ds");
    check_signals "dedup and sort" [ "a"; "b" ]
      (Expr.And (Expr.Var "b", Expr.Or (Expr.Var "a", Expr.Var "b")));
    check_signals "cmp collects arith vars" [ "indata"; "out" ]
      (Expr.Cmp (Expr.Lt, Expr.Avar "out", Expr.Add (Expr.Avar "indata", Expr.Int 1)));
    check_signals "const has none" [] (Expr.Bool true);
    Alcotest.test_case "mentions_any" `Quick (fun () ->
      let e = Expr.And (Expr.Var "ds", Expr.Cmp (Expr.Eq, Expr.Avar "indata", Expr.Int 0)) in
      Alcotest.(check bool) "yes" true (Expr.mentions_any e [ "indata"; "zz" ]);
      Alcotest.(check bool) "no" false (Expr.mentions_any e [ "zz" ])) ]

let simplify_cases =
  let check name expected e =
    Alcotest.test_case name `Quick (fun () ->
      Alcotest.check Helpers.expr_t name expected (Expr.simplify e))
  in
  [ check "and false" (Expr.Bool false) (Expr.And (Expr.Var "a", Expr.Bool false));
    check "and true unit" (Expr.Var "a") (Expr.And (Expr.Bool true, Expr.Var "a"));
    check "or true" (Expr.Bool true) (Expr.Or (Expr.Bool true, Expr.Var "a"));
    check "or false unit" (Expr.Var "a") (Expr.Or (Expr.Var "a", Expr.Bool false));
    check "double negation" (Expr.Var "a") (Expr.Not (Expr.Not (Expr.Var "a")));
    check "not of const" (Expr.Bool false) (Expr.Not (Expr.Bool true));
    check "constant comparison" (Expr.Bool true) (Expr.Cmp (Expr.Lt, Expr.Int 1, Expr.Int 2)) ]

let pp_roundtrip_cases =
  [ Helpers.qtest "print/parse round-trip (expr in formula position)" Helpers.arb_expr
      (fun e ->
        (* Parse back through the formula parser; compare after
           demotion, which collapses the LTL-level connectives the
           parser introduces. *)
        let printed = Format.asprintf "%a" Expr.pp e in
        match Parser.formula_only printed with
        | f ->
          (match Ltl.demote_booleans f with
           | Ltl.Atom e' -> Expr.equal e e'
           | _ -> false)
        | exception Parser.Parse_error _ -> false);
    Helpers.qtest "simplify preserves evaluation" Helpers.arb_expr (fun e ->
      let env =
        lookup_of
          [ ("a", Expr.VBool true); ("b", Expr.VBool false); ("c", Expr.VBool true);
            ("x", Expr.VInt 3); ("y", Expr.VInt (-1)) ]
      in
      Expr.eval env e = Expr.eval env (Expr.simplify e)) ]

let suite =
  ("expr",
   eval_cases @ error_cases @ signal_cases @ simplify_cases @ pp_roundtrip_cases)
