open Tabv_psl

let atom s = Ltl.Atom (Expr.Var s)

let converts name source expected =
  Alcotest.test_case name `Quick (fun () ->
    Helpers.check_ltl name
      (Parser.formula_only expected)
      (Nnf.convert (Parser.formula_only source)))

let unit_cases =
  [ converts "atom unchanged" "a" "a";
    converts "negated atom unchanged" "!a" "!a";
    converts "double negation" "!(!a)" "a";
    converts "de morgan and" "!(a && b)" "!a || !b";
    converts "de morgan or" "!(a || b)" "!a && !b";
    converts "negated implication" "!(a -> b)" "a && !b";
    converts "implication" "a -> b" "!a || b";
    converts "negation through next" "!(next[3](a))" "next[3](!a)";
    converts "until dual" "!(a until b)" "!a release !b";
    converts "release dual" "!(a release b)" "!a until !b";
    converts "always dual" "!(always(a))" "eventually(!a)";
    converts "eventually dual" "!(eventually(a))" "always(!a)";
    converts "nested" "!(always(a -> next(b)))" "eventually(a && next(!b))";
    converts "negated true constant folds" "!true" "false";
    converts "negated false constant folds" "!false" "true";
    converts "positive context recursion" "always(!(a && b))" "always(!a || !b)" ]

let property_cases =
  [ Helpers.qtest "result is in NNF" Helpers.arb_ltl_general (fun f ->
      Ltl.is_nnf (Nnf.convert f));
    Helpers.qtest "idempotent" Helpers.arb_ltl_general (fun f ->
      let once = Nnf.convert f in
      Ltl.equal once (Nnf.convert once));
    Helpers.qtest "preserves three-valued semantics" Helpers.arb_ltl_and_trace
      (fun (f, trace) ->
        Semantics.equal_verdict (Semantics.eval trace f) (Semantics.eval trace (Nnf.convert f)));
    Helpers.qtest "negation flips the verdict" Helpers.arb_ltl_and_trace
      (fun (f, trace) ->
        Semantics.equal_verdict
          (Semantics.v_not (Semantics.eval trace f))
          (Semantics.eval trace (Nnf.convert (Ltl.Not f)))) ]

let suite = ("nnf", unit_cases @ property_cases)
