open Tabv_psl
open Tabv_core

let converts name source expected =
  Alcotest.test_case name `Quick (fun () ->
    Helpers.check_ltl name
      (Parser.formula_only expected)
      (Push_ahead.run (Parser.formula_only source)))

let unit_cases =
  [ converts "atom unchanged" "a" "a";
    converts "next over atom unchanged" "next[3](a)" "next[3](a)";
    converts "next over or" "next(a || b)" "next(a) || next(b)";
    converts "next over and" "next(a && b)" "next(a) && next(b)";
    converts "next over until" "next(a until b)" "next(a) until next(b)";
    converts "next over release" "next(a release b)" "next(a) release next(b)";
    converts "chain collapse" "next(next[2](a))" "next[3](a)";
    converts "chain collapse through or" "next[2](next(a) || b)"
      "next[3](a) || next[2](b)";
    converts "next over always" "next(always(a))" "always(next(a))";
    converts "next over eventually" "next[2](eventually(a))" "eventually(next[2](a))";
    converts "negated atom under next" "next(!a)" "next(!a)";
    converts "paper p2 body" "always (!ds || (next(!ds until next(rdy))))"
      "always (!ds || (next(!ds) until next[2](rdy)))";
    converts "no next is identity" "always(a until (b release c))"
      "always(a until (b release c))";
    converts "deep mixed" "next((a || next(b)) && (c until d))"
      "(next(a) || next[2](b)) && (next(c) until next(d))" ]

let error_cases =
  [ Alcotest.test_case "rejects non-NNF (negated and)" `Quick (fun () ->
      match Push_ahead.run (Parser.formula_only "next(!(a && b))") with
      | _ -> Alcotest.fail "expected Not_in_nnf"
      | exception Push_ahead.Not_in_nnf _ -> ());
    Alcotest.test_case "rejects implication" `Quick (fun () ->
      match Push_ahead.run (Parser.formula_only "next(a -> b)") with
      | _ -> Alcotest.fail "expected Not_in_nnf"
      | exception Push_ahead.Not_in_nnf _ -> ());
    Alcotest.test_case "rejects nexte input" `Quick (fun () ->
      match Push_ahead.run (Parser.formula_only "next(nexte[1,10](a))") with
      | _ -> Alcotest.fail "expected Not_in_nnf"
      | exception Push_ahead.Not_in_nnf _ -> ()) ]

let property_cases =
  [ Helpers.qtest "postcondition: is_pushed" Helpers.arb_ltl_nnf (fun f ->
      Ltl.is_pushed (Push_ahead.run f));
    Helpers.qtest "idempotent" Helpers.arb_ltl_nnf (fun f ->
      let once = Push_ahead.run f in
      Ltl.equal once (Push_ahead.run once));
    Helpers.qtest "preserves semantics" Helpers.arb_nnf_and_trace (fun (f, trace) ->
      Semantics.equal_verdict (Semantics.eval trace f)
        (Semantics.eval trace (Push_ahead.run f)));
    Helpers.qtest "preserves next_depth" Helpers.arb_ltl_nnf (fun f ->
      Ltl.next_depth f = Ltl.next_depth (Push_ahead.run f)) ]

let suite = ("push_ahead", unit_cases @ error_cases @ property_cases)
