open Tabv_sim

let case name f = Alcotest.test_case name `Quick f

let signal_cases =
  [ case "write visible after update phase" (fun () ->
      let k = Kernel.create () in
      let s = Signal.create k ~name:"s" 0 in
      let seen_before = ref (-1) and seen_after = ref (-1) in
      Kernel.schedule_at k ~time:10 (fun () ->
        Signal.write s 5;
        seen_before := Signal.read s;
        Kernel.schedule_next_delta k (fun () -> seen_after := Signal.read s));
      ignore (Kernel.run k);
      Alcotest.(check int) "old value during evaluation" 0 !seen_before;
      Alcotest.(check int) "new value next delta" 5 !seen_after);
    case "changed event fires on change only" (fun () ->
      let k = Kernel.create () in
      let s = Signal.create k ~name:"s" 0 in
      let changes = ref 0 in
      Event.on_event (Signal.changed s) (fun () -> incr changes);
      Kernel.schedule_at k ~time:10 (fun () -> Signal.write s 1);
      Kernel.schedule_at k ~time:20 (fun () -> Signal.write s 1);
      Kernel.schedule_at k ~time:30 (fun () -> Signal.write s 2);
      ignore (Kernel.run k);
      Alcotest.(check int) "two changes" 2 !changes;
      Alcotest.(check int) "change_count" 2 (Signal.change_count s));
    case "last write in a delta wins" (fun () ->
      let k = Kernel.create () in
      let s = Signal.create k ~name:"s" 0 in
      Kernel.schedule_at k ~time:10 (fun () ->
        Signal.write s 1;
        Signal.write s 2;
        Signal.write s 3);
      ignore (Kernel.run k);
      Alcotest.(check int) "final" 3 (Signal.read s));
    case "custom equality suppresses notification" (fun () ->
      let k = Kernel.create () in
      let s = Signal.create k ~name:"s" ~equal:(fun a b -> abs (a - b) <= 1) 0 in
      let changes = ref 0 in
      Event.on_event (Signal.changed s) (fun () -> incr changes);
      Kernel.schedule_at k ~time:10 (fun () -> Signal.write s 1);
      (* Within tolerance: treated as unchanged. *)
      Kernel.schedule_at k ~time:20 (fun () -> Signal.write s 5);
      ignore (Kernel.run k);
      Alcotest.(check int) "one change" 1 !changes) ]

let clock_cases =
  [ case "edges alternate with the right period" (fun () ->
      let k = Kernel.create () in
      let clock = Clock.create k ~name:"clk" ~period:10 () in
      let pos = ref [] and neg = ref [] in
      Event.on_event (Clock.posedge clock) (fun () -> pos := Kernel.now k :: !pos);
      Event.on_event (Clock.negedge clock) (fun () -> neg := Kernel.now k :: !neg);
      ignore (Kernel.run ~until:32 k);
      Alcotest.(check (list int)) "posedges" [ 0; 10; 20; 30 ] (List.rev !pos);
      Alcotest.(check (list int)) "negedges" [ 5; 15; 25 ] (List.rev !neg));
    case "signal level tracks edges" (fun () ->
      let k = Kernel.create () in
      let clock = Clock.create k ~name:"clk" ~period:10 () in
      let levels = ref [] in
      (* Sample one delta after each edge event, when the level has
         settled. *)
      Event.on_event (Clock.posedge clock) (fun () ->
        Kernel.schedule_next_delta k (fun () ->
          levels := (Kernel.now k, Signal.read (Clock.signal clock)) :: !levels));
      Event.on_event (Clock.negedge clock) (fun () ->
        Kernel.schedule_next_delta k (fun () ->
          levels := (Kernel.now k, Signal.read (Clock.signal clock)) :: !levels));
      ignore (Kernel.run ~until:22 k);
      Alcotest.(check (list (pair int bool)))
        "levels"
        [ (0, true); (5, false); (10, true); (15, false); (20, true) ]
        (List.rev !levels));
    case "odd period rejected" (fun () ->
      let k = Kernel.create () in
      match Clock.create k ~name:"clk" ~period:7 () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
    case "cycle count" (fun () ->
      let k = Kernel.create () in
      let clock = Clock.create k ~name:"clk" ~period:10 () in
      ignore (Kernel.run ~until:95 k);
      Alcotest.(check int) "cycles" 10 (Clock.cycle_count clock)) ]

let tlm_cases =
  [ case "b_transport reaches the target" (fun () ->
      let k = Kernel.create () in
      let received = ref [] in
      let target =
        Tlm.Target.create k ~name:"t" (fun payload ->
          received := payload.Tlm.data :: !received;
          payload.Tlm.data <- Int64.add payload.Tlm.data 1L)
      in
      let initiator = Tlm.Initiator.create k ~name:"i" in
      Tlm.Initiator.bind initiator target;
      Process.spawn k ~name:"driver" (fun () ->
        let payload = Tlm.make_payload ~data:41L Tlm.Write in
        Tlm.Initiator.b_transport initiator payload;
        Alcotest.(check int64) "response" 42L payload.Tlm.data);
      ignore (Kernel.run k);
      Alcotest.(check (list int64)) "received" [ 41L ] !received);
    case "transaction observers see begin and end times" (fun () ->
      let k = Kernel.create () in
      let target =
        Tlm.Target.create k ~name:"t" (fun _payload -> Process.wait_ns k 30)
      in
      let initiator = Tlm.Initiator.create k ~name:"i" in
      Tlm.Initiator.bind initiator target;
      let observed = ref [] in
      Tlm.Initiator.on_transaction initiator (fun transaction ->
        observed := (transaction.Tlm.start_time, transaction.Tlm.end_time) :: !observed);
      Process.spawn k ~name:"driver" (fun () ->
        Process.wait_ns k 10;
        Tlm.Initiator.b_transport initiator (Tlm.make_payload Tlm.Read));
      ignore (Kernel.run k);
      Alcotest.(check (list (pair int int))) "times" [ (10, 40) ] !observed;
      Alcotest.(check int) "count" 1 (Tlm.Initiator.transaction_count initiator));
    case "unbound initiator rejected" (fun () ->
      let k = Kernel.create () in
      let initiator = Tlm.Initiator.create k ~name:"i" in
      match Tlm.Initiator.b_transport initiator (Tlm.make_payload Tlm.Read) with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
    case "double bind rejected" (fun () ->
      let k = Kernel.create () in
      let target = Tlm.Target.create k ~name:"t" ignore in
      let initiator = Tlm.Initiator.create k ~name:"i" in
      Tlm.Initiator.bind initiator target;
      match Tlm.Initiator.bind initiator target with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

let trace_rec_cases =
  [ case "recorder collects ordered samples" (fun () ->
      let rec_ = Trace_rec.create () in
      Trace_rec.sample rec_ ~time:0 [ ("a", Tabv_psl.Expr.VBool true) ];
      Trace_rec.sample rec_ ~time:10 [ ("a", Tabv_psl.Expr.VBool false) ];
      let trace = Trace_rec.to_trace rec_ in
      Alcotest.(check int) "length" 2 (Tabv_psl.Trace.length trace));
    case "same-time sample overwrites" (fun () ->
      let rec_ = Trace_rec.create () in
      Trace_rec.sample rec_ ~time:5 [ ("a", Tabv_psl.Expr.VInt 1) ];
      Trace_rec.sample rec_ ~time:5 [ ("a", Tabv_psl.Expr.VInt 2) ];
      let trace = Trace_rec.to_trace rec_ in
      Alcotest.(check int) "length" 1 (Tabv_psl.Trace.length trace);
      match Tabv_psl.Trace.lookup (Tabv_psl.Trace.get trace 0) "a" with
      | Some (Tabv_psl.Expr.VInt 2) -> ()
      | _ -> Alcotest.fail "expected overwritten value");
    case "time going backwards rejected" (fun () ->
      let rec_ = Trace_rec.create () in
      Trace_rec.sample rec_ ~time:10 [];
      match Trace_rec.sample rec_ ~time:5 [] with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

let suite = ("signal_clock_tlm", signal_cases @ clock_cases @ tlm_cases @ trace_rec_cases)
