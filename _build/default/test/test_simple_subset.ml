open Tabv_psl

let ok name source =
  Alcotest.test_case name `Quick (fun () ->
    let violations = Simple_subset.check (Parser.formula_only source) in
    if violations <> [] then
      Alcotest.failf "unexpected violations: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Simple_subset.pp_violation) violations)))

let bad name source expected_count =
  Alcotest.test_case name `Quick (fun () ->
    Alcotest.(check int) name expected_count
      (List.length (Simple_subset.check (Parser.formula_only source))))

let cases =
  [ ok "boolean formula" "a && (b || !c)";
    ok "paper p1" "always (!(ds && indata = 0) || next[17](out != 0))";
    ok "paper p2" "always (!ds || (next(!ds until next(rdy))))";
    ok "paper p3"
      "always (!ds || (next[15](u) && next[16](v) && next[17](rdy)))";
    ok "boolean until lhs" "a until next(b)";
    ok "implication with boolean antecedent" "a -> next[2](b)";
    ok "negation of boolean" "!(a && b)";
    bad "negation of temporal" "!(next(a))" 1;
    bad "temporal until lhs" "next(a) until b" 1;
    bad "temporal release lhs" "next(a) release b" 1;
    bad "both or operands temporal" "next(a) || next(b)" 1;
    bad "temporal antecedent" "next(a) -> b" 1;
    bad "two violations" "next(a) until (next(b) || next(c))" 2;
    Alcotest.test_case "is_simple" `Quick (fun () ->
      Alcotest.(check bool) "yes" true
        (Simple_subset.is_simple (Parser.formula_only "always(a -> next(b))"));
      Alcotest.(check bool) "no" false
        (Simple_subset.is_simple (Parser.formula_only "!(always(a))"))) ]

let suite = ("simple_subset", cases)
