open Tabv_sim

(* Remaining simulation-layer corners: elaboration-time forcing,
   payload defaults, method initialization, negative waits, stop/reuse. *)

let case name f = Alcotest.test_case name `Quick f

let cases =
  [ case "Signal.force sets the value immediately" (fun () ->
      let k = Kernel.create () in
      let s = Signal.create k ~name:"s" 0 in
      Signal.force s 7;
      Alcotest.(check int) "forced" 7 (Signal.read s);
      (* No change event was produced. *)
      Alcotest.(check int) "no changes" 0 (Signal.change_count s));
    case "payload defaults" (fun () ->
      let payload = Tlm.make_payload Tlm.Read in
      Alcotest.(check int) "address" 0 payload.Tlm.address;
      Alcotest.(check int64) "data" 0L payload.Tlm.data;
      Alcotest.(check bool) "ok" true payload.Tlm.response_ok;
      Alcotest.(check bool) "no extension" true (payload.Tlm.extension = None));
    case "method process initialization runs at elaboration" (fun () ->
      let k = Kernel.create () in
      let ev = Event.create k "e" in
      let runs = ref 0 in
      Process.method_process k ~name:"m" ~sensitivity:[ ev ] (fun () -> incr runs);
      Kernel.schedule_at k ~time:10 (fun () -> Event.notify ev);
      ignore (Kernel.run k);
      (* once at elaboration + once on the notification *)
      Alcotest.(check int) "runs" 2 !runs);
    case "method process with initialize:false waits for its event" (fun () ->
      let k = Kernel.create () in
      let ev = Event.create k "e" in
      let runs = ref 0 in
      Process.method_process k ~name:"m" ~initialize:false ~sensitivity:[ ev ]
        (fun () -> incr runs);
      Kernel.schedule_at k ~time:10 (fun () -> Event.notify ev);
      ignore (Kernel.run k);
      Alcotest.(check int) "runs" 1 !runs);
    case "negative thread wait rejected" (fun () ->
      let k = Kernel.create () in
      let failed = ref false in
      Process.spawn k ~name:"t" (fun () ->
        match Process.wait_ns k (-5) with
        | () -> ()
        | exception Invalid_argument _ -> failed := true);
      ignore (Kernel.run k);
      Alcotest.(check bool) "rejected" true !failed);
    case "kernel can run again after stop" (fun () ->
      let k = Kernel.create () in
      let fired = ref [] in
      Kernel.schedule_at k ~time:10 (fun () ->
        fired := 10 :: !fired;
        Kernel.stop k);
      Kernel.schedule_at k ~time:20 (fun () -> fired := 20 :: !fired);
      ignore (Kernel.run k);
      Alcotest.(check (list int)) "first run" [ 10 ] (List.rev !fired);
      ignore (Kernel.run k);
      Alcotest.(check (list int)) "second run drains the rest" [ 10; 20 ]
        (List.rev !fired));
    case "zero-delay notify_after still defers to next delta" (fun () ->
      let k = Kernel.create () in
      let ev = Event.create k "e" in
      let order = ref [] in
      Event.once ev (fun () -> order := "waiter" :: !order);
      Kernel.schedule_at k ~time:5 (fun () ->
        Event.notify_after ev ~delay:0;
        order := "notifier" :: !order);
      ignore (Kernel.run k);
      Alcotest.(check (list string)) "order" [ "notifier"; "waiter" ] (List.rev !order));
    case "transaction observers fire in registration order" (fun () ->
      let k = Kernel.create () in
      let target = Tlm.Target.create k ~name:"t" ignore in
      let initiator = Tlm.Initiator.create k ~name:"i" in
      Tlm.Initiator.bind initiator target;
      let order = ref [] in
      Tlm.Initiator.on_transaction initiator (fun _ -> order := 1 :: !order);
      Tlm.Initiator.on_transaction initiator (fun _ -> order := 2 :: !order);
      Process.spawn k ~name:"d" (fun () ->
        Tlm.Initiator.b_transport initiator (Tlm.make_payload Tlm.Read));
      ignore (Kernel.run k);
      Alcotest.(check (list int)) "order" [ 1; 2 ] (List.rev !order)) ]

let fifo_cases =
  [ case "producer/consumer through a bounded fifo" (fun () ->
      let k = Kernel.create () in
      let fifo = Fifo.create k ~name:"f" ~capacity:2 in
      let consumed = ref [] in
      Process.spawn k ~name:"producer" (fun () ->
        for i = 1 to 6 do
          Fifo.put fifo i;
          Process.wait_ns k 1
        done);
      Process.spawn k ~name:"consumer" (fun () ->
        for _ = 1 to 6 do
          let item = Fifo.get fifo in
          consumed := item :: !consumed;
          Process.wait_ns k 3
        done;
        Kernel.stop k);
      ignore (Kernel.run k);
      Alcotest.(check (list int)) "all items in order" [ 1; 2; 3; 4; 5; 6 ]
        (List.rev !consumed));
    case "put blocks when full" (fun () ->
      let k = Kernel.create () in
      let fifo = Fifo.create k ~name:"f" ~capacity:1 in
      let second_put_at = ref (-1) in
      Process.spawn k ~name:"producer" (fun () ->
        Fifo.put fifo 1;
        Fifo.put fifo 2;
        second_put_at := Kernel.now k);
      Process.spawn k ~name:"consumer" (fun () ->
        Process.wait_ns k 50;
        ignore (Fifo.get fifo));
      ignore (Kernel.run k);
      Alcotest.(check int) "unblocked when space freed" 50 !second_put_at);
    case "try variants do not block" (fun () ->
      let k = Kernel.create () in
      let fifo = Fifo.create k ~name:"f" ~capacity:1 in
      Alcotest.(check (option int)) "empty" None (Fifo.try_get fifo);
      Alcotest.(check bool) "put ok" true (Fifo.try_put fifo 9);
      Alcotest.(check bool) "full" false (Fifo.try_put fifo 10);
      Alcotest.(check (option int)) "got" (Some 9) (Fifo.try_get fifo));
    case "zero capacity rejected" (fun () ->
      let k = Kernel.create () in
      match Fifo.create k ~name:"f" ~capacity:0 with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

let dump_cases =
  [ case "Trace_dump round-trips through the VCD reader" (fun () ->
      let trace =
        Tabv_psl.Trace.of_list
          [ { Tabv_psl.Trace.time = 0;
              env = [ ("en", Tabv_psl.Expr.VBool true); ("v", Tabv_psl.Expr.VInt 5) ] };
            { Tabv_psl.Trace.time = 20;
              env = [ ("en", Tabv_psl.Expr.VBool false); ("v", Tabv_psl.Expr.VInt 9) ] } ]
      in
      let path = Filename.temp_file "tabv" ".vcd" in
      Trace_dump.to_file trace path;
      let parsed = Vcd_reader.load path in
      Sys.remove path;
      Alcotest.(check int) "entries" 2 (Tabv_psl.Trace.length parsed.Vcd_reader.trace);
      match
        Tabv_psl.Trace.lookup (Tabv_psl.Trace.get parsed.Vcd_reader.trace 1) "v"
      with
      | Some (Tabv_psl.Expr.VInt 9) -> ()
      | _ -> Alcotest.fail "value lost") ]

let lint_cases =
  [ case "unknown_signals flags typos" (fun () ->
      let p =
        Tabv_psl.Parser.property_exn ~name:"p"
          "always (!ds || next(rdyy)) @clk_pos"
      in
      Alcotest.(check (list string)) "unknown" [ "rdyy" ]
        (Tabv_psl.Property.unknown_signals
           ~known:Tabv_duv.Des56_iface.signal_names p)) ]

let wait_any_cases =
  [ case "wait_any wakes on the earliest event" (fun () ->
      let k = Kernel.create () in
      let e1 = Event.create k "e1" and e2 = Event.create k "e2" in
      let woke_at = ref (-1) in
      Process.spawn k ~name:"t" (fun () ->
        Process.wait_any [ e1; e2 ];
        woke_at := Kernel.now k);
      Kernel.schedule_at k ~time:30 (fun () -> Event.notify e2);
      Kernel.schedule_at k ~time:50 (fun () -> Event.notify e1);
      ignore (Kernel.run k);
      Alcotest.(check int) "woke on e2" 30 !woke_at);
    case "wait_any resumes exactly once on simultaneous events" (fun () ->
      let k = Kernel.create () in
      let e1 = Event.create k "e1" and e2 = Event.create k "e2" in
      let wakes = ref 0 in
      Process.spawn k ~name:"t" (fun () ->
        Process.wait_any [ e1; e2 ];
        incr wakes);
      Kernel.schedule_at k ~time:10 (fun () ->
        Event.notify e1;
        Event.notify e2);
      ignore (Kernel.run k);
      Alcotest.(check int) "one wake" 1 !wakes);
    case "wait_any on an empty list rejected" (fun () ->
      let k = Kernel.create () in
      let failed = ref false in
      Process.spawn k ~name:"t" (fun () ->
        match Process.wait_any [] with
        | () -> ()
        | exception Invalid_argument _ -> failed := true);
      ignore (Kernel.run k);
      Alcotest.(check bool) "rejected" true !failed) ]

let isolation_cases =
  [ case "observers of one initiator ignore another's traffic" (fun () ->
      let k = Kernel.create () in
      let target = Tlm.Target.create k ~name:"t" ignore in
      let init_a = Tlm.Initiator.create k ~name:"a" in
      let init_b = Tlm.Initiator.create k ~name:"b" in
      Tlm.Initiator.bind init_a target;
      Tlm.Initiator.bind init_b target;
      let a_seen = ref 0 in
      Tlm.Initiator.on_transaction init_a (fun _ -> incr a_seen);
      Process.spawn k ~name:"d" (fun () ->
        Tlm.Initiator.b_transport init_a (Tlm.make_payload Tlm.Read);
        Tlm.Initiator.b_transport init_b (Tlm.make_payload Tlm.Read);
        Tlm.Initiator.b_transport init_b (Tlm.make_payload Tlm.Read));
      ignore (Kernel.run k);
      Alcotest.(check int) "only a's transaction" 1 !a_seen;
      Alcotest.(check int) "b counted separately" 2
        (Tlm.Initiator.transaction_count init_b)) ]

let trace_api_cases =
  [ case "Trace.filter keeps only matching evaluation points" (fun () ->
      let entry time en = { Tabv_psl.Trace.time; env = [ ("en", Tabv_psl.Expr.VBool en) ] } in
      let trace = Tabv_psl.Trace.of_list [ entry 0 true; entry 10 false; entry 20 true ] in
      let gated =
        Tabv_psl.Trace.filter
          (fun e ->
            match Tabv_psl.Trace.lookup e "en" with
            | Some (Tabv_psl.Expr.VBool b) -> b
            | _ -> false)
          trace
      in
      Alcotest.(check int) "two entries" 2 (Tabv_psl.Trace.length gated);
      Alcotest.(check int) "times preserved" 20
        (Tabv_psl.Trace.time_at gated 1));
    case "Monitor.evaluation_table lists pending timed instants" (fun () ->
      let q3 =
        Tabv_psl.Parser.property_exn ~name:"q3"
          "always (!ds || nexte[1,170](rdy)) @tb"
      in
      let monitor = Tabv_checker.Monitor.create q3 in
      let env ~ds = function
        | "ds" -> Some (Tabv_psl.Expr.VBool ds)
        | "rdy" -> Some (Tabv_psl.Expr.VBool false)
        | _ -> None
      in
      Tabv_checker.Monitor.step monitor ~time:0 (env ~ds:true);
      Tabv_checker.Monitor.step monitor ~time:40 (env ~ds:true);
      Alcotest.(check (list int)) "table" [ 170; 210 ]
        (Tabv_checker.Monitor.evaluation_table monitor)) ]

let suite =
  ("sim_extra",
   cases @ fifo_cases @ dump_cases @ lint_cases @ wait_any_cases @ isolation_cases
   @ trace_api_cases)
