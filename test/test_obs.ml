(* Unit suite for the observability layer (lib/obs): the metrics
   registry (counters, gauges, histograms, probes, timers), the span
   recorder, the shared checker snapshot record, and the determinism
   of registry snapshots across identically-seeded runs. *)

module Metrics = Tabv_obs.Metrics
module Span = Tabv_obs.Span
module Checker_snapshot = Tabv_obs.Checker_snapshot

let case name f = Alcotest.test_case name `Quick f

let value : Metrics.value Alcotest.testable =
  Alcotest.testable Metrics.pp_value ( = )

let expect_invalid_arg name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* --- counters / gauges ------------------------------------------------ *)

let counter_cases =
  [ case "counter counts" (fun () ->
      let m = Metrics.create () in
      let c = Metrics.counter m "a" in
      Metrics.incr c;
      Metrics.add c 4;
      Alcotest.(check int) "value" 5 (Metrics.counter_value c));
    case "re-registration returns the same instrument" (fun () ->
      let m = Metrics.create () in
      let c1 = Metrics.counter m "a" in
      let c2 = Metrics.counter m "a" in
      Metrics.incr c1;
      Metrics.incr c2;
      Alcotest.(check int) "shared" 2 (Metrics.counter_value c1));
    case "disabled registry: push updates are no-ops" (fun () ->
      let m = Metrics.disabled () in
      let c = Metrics.counter m "a" in
      let g = Metrics.gauge m "g" in
      let h = Metrics.histogram m "h" in
      Metrics.incr c;
      Metrics.add c 10;
      Metrics.set g 7;
      Metrics.record_max g 9;
      Metrics.observe h 3;
      Alcotest.check value "counter" (Metrics.Counter 0)
        (Option.get (Metrics.find m "a"));
      Alcotest.check value "gauge" (Metrics.Gauge 0)
        (Option.get (Metrics.find m "g"));
      (match Metrics.find m "h" with
       | Some (Metrics.Histogram s) -> Alcotest.(check int) "empty" 0 s.count
       | _ -> Alcotest.fail "histogram expected"));
    case "set_enabled switches updates on and off" (fun () ->
      let m = Metrics.create ~enabled:false () in
      let c = Metrics.counter m "a" in
      Metrics.incr c;
      Metrics.set_enabled m true;
      Metrics.incr c;
      Metrics.set_enabled m false;
      Metrics.incr c;
      Alcotest.(check int) "only the middle incr counted" 1
        (Metrics.counter_value c));
    case "kind mismatch raises Invalid_argument" (fun () ->
      let m = Metrics.create () in
      ignore (Metrics.counter m "a");
      expect_invalid_arg "gauge over counter" (fun () -> Metrics.gauge m "a");
      expect_invalid_arg "histogram over counter" (fun () ->
        Metrics.histogram m "a");
      expect_invalid_arg "probe over counter" (fun () ->
        Metrics.probe m "a" (fun () -> 0)));
    case "gauge set and record_max" (fun () ->
      let m = Metrics.create () in
      let g = Metrics.gauge m "g" in
      Metrics.set g 5;
      Metrics.record_max g 3;
      Alcotest.(check int) "max keeps 5" 5 (Metrics.gauge_value g);
      Metrics.record_max g 11;
      Alcotest.(check int) "max takes 11" 11 (Metrics.gauge_value g);
      Metrics.set g 2;
      Alcotest.(check int) "set overrides" 2 (Metrics.gauge_value g)) ]

(* --- histograms ------------------------------------------------------- *)

let histogram_cases =
  [ case "histogram summary: count/sum/min/max and 2^i buckets" (fun () ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "h" in
      List.iter (Metrics.observe h) [ 1; 2; 3; 4; 5; 1000 ];
      match Metrics.find m "h" with
      | Some (Metrics.Histogram s) ->
        Alcotest.(check int) "count" 6 s.count;
        Alcotest.(check int) "sum" 1015 s.sum;
        Alcotest.(check int) "min" 1 s.min_value;
        Alcotest.(check int) "max" 1000 s.max_value;
        (* 1 -> (..1], 2 -> (1,2], 3,4 -> (2,4], 5 -> (4,8],
           1000 -> (512,1024] *)
        Alcotest.(check (list (pair int int)))
          "buckets"
          [ (1, 1); (2, 1); (4, 2); (8, 1); (1024, 1) ]
          s.by_upper_bound
      | _ -> Alcotest.fail "histogram expected");
    case "empty histogram reports zero min/max" (fun () ->
      let m = Metrics.create () in
      ignore (Metrics.histogram m "h");
      match Metrics.find m "h" with
      | Some (Metrics.Histogram s) ->
        Alcotest.(check int) "min" 0 s.min_value;
        Alcotest.(check int) "max" 0 s.max_value;
        Alcotest.(check (list (pair int int))) "buckets" [] s.by_upper_bound
      | _ -> Alcotest.fail "histogram expected") ]

(* --- probes ----------------------------------------------------------- *)

let probe_cases =
  [ case "probes combine with Sum and Max at snapshot time" (fun () ->
      let m = Metrics.create () in
      let a = ref 3 and b = ref 4 in
      Metrics.probe m "sum" (fun () -> !a);
      Metrics.probe m "sum" (fun () -> !b);
      Metrics.probe m ~combine:`Max "max" (fun () -> !a);
      Metrics.probe m ~combine:`Max "max" (fun () -> !b);
      Alcotest.check value "sum" (Metrics.Gauge 7)
        (Option.get (Metrics.find m "sum"));
      Alcotest.check value "max" (Metrics.Gauge 4)
        (Option.get (Metrics.find m "max"));
      a := 10;
      Alcotest.check value "sum re-evaluates" (Metrics.Gauge 14)
        (Option.get (Metrics.find m "sum"));
      Alcotest.check value "max re-evaluates" (Metrics.Gauge 10)
        (Option.get (Metrics.find m "max")));
    case "probe combiner mismatch raises" (fun () ->
      let m = Metrics.create () in
      Metrics.probe m "p" (fun () -> 0);
      expect_invalid_arg "Max over Sum" (fun () ->
        Metrics.probe m ~combine:`Max "p" (fun () -> 0)));
    case "probes answer on a disabled registry" (fun () ->
      let m = Metrics.disabled () in
      Metrics.probe m "p" (fun () -> 42);
      Alcotest.check value "probe" (Metrics.Gauge 42)
        (Option.get (Metrics.find m "p"))) ]

(* --- snapshot / reset ------------------------------------------------- *)

let snapshot_cases =
  [ case "snapshot is sorted by name" (fun () ->
      let m = Metrics.create () in
      ignore (Metrics.counter m "zebra");
      ignore (Metrics.counter m "alpha");
      ignore (Metrics.gauge m "mid");
      Alcotest.(check (list string))
        "order" [ "alpha"; "mid"; "zebra" ]
        (List.map fst (Metrics.snapshot m)));
    case "find on an unknown name is None" (fun () ->
      let m = Metrics.create () in
      Alcotest.(check bool) "none" true (Metrics.find m "nope" = None));
    case "reset zeroes instruments but keeps probes registered" (fun () ->
      let m = Metrics.create () in
      let c = Metrics.counter m "c" in
      let g = Metrics.gauge m "g" in
      let h = Metrics.histogram m "h" in
      Metrics.probe m "p" (fun () -> 5);
      Metrics.add c 3;
      Metrics.set g 9;
      Metrics.observe h 100;
      Metrics.reset m;
      Alcotest.check value "counter" (Metrics.Counter 0)
        (Option.get (Metrics.find m "c"));
      Alcotest.check value "gauge" (Metrics.Gauge 0)
        (Option.get (Metrics.find m "g"));
      (match Metrics.find m "h" with
       | Some (Metrics.Histogram s) ->
         Alcotest.(check int) "histogram count" 0 s.count;
         Alcotest.(check (list (pair int int))) "buckets" [] s.by_upper_bound
       | _ -> Alcotest.fail "histogram expected");
      Alcotest.check value "probe survives reset" (Metrics.Gauge 5)
        (Option.get (Metrics.find m "p"))) ]

(* --- merge ------------------------------------------------------------ *)

let merge_cases =
  let registry fill =
    let m = Metrics.create () in
    fill m;
    Metrics.snapshot m
  in
  [ case "merge sums counters and maxes gauges" (fun () ->
      let a =
        registry (fun m ->
          Metrics.add (Metrics.counter m "c") 3;
          Metrics.set (Metrics.gauge m "g") 7)
      in
      let b =
        registry (fun m ->
          Metrics.add (Metrics.counter m "c") 4;
          Metrics.set (Metrics.gauge m "g") 5)
      in
      let merged = Metrics.merge a b in
      Alcotest.check value "counter" (Metrics.Counter 7)
        (List.assoc "c" merged);
      Alcotest.check value "gauge" (Metrics.Gauge 7) (List.assoc "g" merged));
    case "merge aligns by name and passes singletons through" (fun () ->
      let a = registry (fun m -> Metrics.add (Metrics.counter m "only_a") 1) in
      let b =
        registry (fun m ->
          Metrics.add (Metrics.counter m "only_b") 2;
          Metrics.add (Metrics.counter m "zz") 3)
      in
      Alcotest.(check (list string))
        "names sorted" [ "only_a"; "only_b"; "zz" ]
        (List.map fst (Metrics.merge a b)));
    case "merge sums histograms bucket by bucket" (fun () ->
      let a =
        registry (fun m ->
          let h = Metrics.histogram m "h" in
          Metrics.observe h 1;
          Metrics.observe h 100)
      in
      let b =
        registry (fun m ->
          let h = Metrics.histogram m "h" in
          Metrics.observe h 100;
          Metrics.observe h 5000)
      in
      match List.assoc "h" (Metrics.merge a b) with
      | Metrics.Histogram s ->
        Alcotest.(check int) "count" 4 s.count;
        Alcotest.(check int) "sum" 5201 s.sum;
        Alcotest.(check int) "min" 1 s.min_value;
        Alcotest.(check int) "max" 5000 s.max_value;
        let total = List.fold_left (fun acc (_, n) -> acc + n) 0 s.by_upper_bound in
        Alcotest.(check int) "bucket total" 4 total
      | _ -> Alcotest.fail "histogram expected");
    case "merge with an empty-count histogram keeps the other side" (fun () ->
      let a = registry (fun m -> ignore (Metrics.histogram m "h")) in
      let b =
        registry (fun m -> Metrics.observe (Metrics.histogram m "h") 9)
      in
      match List.assoc "h" (Metrics.merge a b) with
      | Metrics.Histogram s ->
        Alcotest.(check int) "count" 1 s.count;
        Alcotest.(check int) "min" 9 s.min_value
      | _ -> Alcotest.fail "histogram expected");
    case "merge rejects mismatched kinds" (fun () ->
      let a = registry (fun m -> ignore (Metrics.counter m "x")) in
      let b = registry (fun m -> ignore (Metrics.gauge m "x")) in
      expect_invalid_arg "kind clash" (fun () -> Metrics.merge a b));
    case "merge_all folds many snapshots" (fun () ->
      let snap n = registry (fun m -> Metrics.add (Metrics.counter m "c") n) in
      Alcotest.check value "sum" (Metrics.Counter 6)
        (List.assoc "c" (Metrics.merge_all [ snap 1; snap 2; snap 3 ]));
      Alcotest.(check (list (pair string value))) "empty" []
        (Metrics.merge_all [])) ]

(* --- timers ----------------------------------------------------------- *)

let timer_cases =
  [ case "timers stay at zero until a clock is installed" (fun () ->
      let m = Metrics.create () in
      let tm = Metrics.timer m "t" in
      Alcotest.(check bool) "not timing" false (Metrics.timing m);
      Metrics.start tm;
      Metrics.stop tm;
      Alcotest.(check (float 0.)) "seconds" 0. (Metrics.timer_seconds tm);
      Alcotest.(check int) "laps" 0 (Metrics.timer_laps tm));
    case "timers accumulate with an installed fake clock" (fun () ->
      let m = Metrics.create () in
      let now = ref 0. in
      Metrics.set_clock m (fun () -> !now);
      Alcotest.(check bool) "timing" true (Metrics.timing m);
      let tm = Metrics.timer m "t" in
      Metrics.start tm;
      now := 1.5;
      Metrics.stop tm;
      Metrics.start tm;
      now := 2.0;
      Metrics.stop tm;
      Alcotest.(check (float 1e-9)) "seconds" 2.0 (Metrics.timer_seconds tm);
      Alcotest.(check int) "laps" 2 (Metrics.timer_laps tm));
    case "time wrapper is exception-safe" (fun () ->
      let m = Metrics.create () in
      let now = ref 0. in
      Metrics.set_clock m (fun () -> !now);
      let tm = Metrics.timer m "t" in
      (try
         Metrics.time tm (fun () ->
           now := 0.25;
           failwith "boom")
       with Failure _ -> ());
      Alcotest.(check (float 1e-9)) "stopped on raise" 0.25
        (Metrics.timer_seconds tm);
      Alcotest.(check int) "laps" 1 (Metrics.timer_laps tm));
    case "timers do not sample on a disabled registry" (fun () ->
      let m = Metrics.create ~enabled:false () in
      Metrics.set_clock m (fun () -> 99.);
      let tm = Metrics.timer m "t" in
      Metrics.start tm;
      Metrics.stop tm;
      Alcotest.(check (float 0.)) "seconds" 0. (Metrics.timer_seconds tm));
    case "timers listing is sorted and excluded from snapshot" (fun () ->
      let m = Metrics.create () in
      let now = ref 0. in
      Metrics.set_clock m (fun () -> !now);
      ignore (Metrics.timer m "z");
      ignore (Metrics.timer m "a");
      Alcotest.(check (list string))
        "timer order" [ "a"; "z" ]
        (List.map (fun (n, _, _) -> n) (Metrics.timers m));
      Alcotest.(check (list string)) "snapshot empty" []
        (List.map fst (Metrics.snapshot m))) ]

(* --- spans ------------------------------------------------------------ *)

let span_cases =
  [ case "span ring wraps and keeps whole-run totals" (fun () ->
      let s = Span.create ~capacity:3 () in
      for i = 0 to 4 do
        Span.record s
          ~label:(Printf.sprintf "op%d" i)
          ~start_ns:(i * 10)
          ~stop_ns:((i * 10) + 5)
      done;
      Alcotest.(check int) "recorded" 5 (Span.recorded s);
      Alcotest.(check int) "retained" 3 (Span.retained s);
      Alcotest.(check int) "dropped" 2 (Span.dropped s);
      Alcotest.(check int) "total_ns" 25 (Span.total_ns s);
      Alcotest.(check (list string))
        "oldest first" [ "op2"; "op3"; "op4" ]
        (List.map (fun (sp : Span.span) -> sp.label) (Span.to_list s)));
    case "span create rejects non-positive capacity" (fun () ->
      expect_invalid_arg "capacity" (fun () -> Span.create ~capacity:0 ())) ]

(* --- checker snapshot ------------------------------------------------- *)

let snapshot_record base =
  { Checker_snapshot.property_name = "p";
    engine = "progression";
    activations = 10;
    passes = 8;
    trivial_passes = 1;
    vacuous = false;
    peak_instances = 2;
    peak_distinct_states = 4;
    pending = 0;
    steps = 20;
    cache_hits = base;
    cache_misses = base;
    failures = [];
  }

let checker_snapshot_cases =
  [ case "cache_hit_rate" (fun () ->
      let s = { (snapshot_record 0) with cache_hits = 3; cache_misses = 1 } in
      Alcotest.(check (float 1e-9)) "3/4" 0.75
        (Checker_snapshot.cache_hit_rate s);
      Alcotest.(check (float 0.)) "never stepped" 0.
        (Checker_snapshot.cache_hit_rate (snapshot_record 0)));
    case "total_failures sums across properties" (fun () ->
      let f =
        { Checker_snapshot.property_name = "p"; activation_time = 10;
          failure_time = 20 }
      in
      let s1 = { (snapshot_record 0) with failures = [ f; f ] } in
      let s2 = snapshot_record 0 in
      Alcotest.(check int) "two" 2
        (Checker_snapshot.total_failures [ s1; s2 ])) ]

(* --- integration: seeded runs, registry determinism ------------------- *)

let integration_cases =
  [ case "two seeded runs produce identical registry snapshots" (fun () ->
      (* The process-global interning/progression memo is cumulative, so
         cache counters differ between in-process reruns; everything
         else must match exactly. *)
      let run () =
        let metrics = Metrics.create ~enabled:true () in
        let ops = Tabv_duv.Workload.des56 ~seed:7 ~count:12 () in
        (Tabv_duv.Testbench.run_des56_rtl ~metrics ops).metrics
      in
      let mentions_cache name =
        let rec scan i =
          i + 5 <= String.length name
          && (String.sub name i 5 = "cache" || scan (i + 1))
        in
        scan 0
      in
      let stable = List.filter (fun (name, _) -> not (mentions_cache name)) in
      let a = stable (run ()) and b = stable (run ()) in
      Alcotest.(check (list (pair string value))) "snapshots" a b;
      Alcotest.(check bool) "non-trivial" true (List.length a > 5));
    case "disabled-by-default runs snapshot nothing" (fun () ->
      let ops = Tabv_duv.Workload.des56 ~seed:7 ~count:4 () in
      let r = Tabv_duv.Testbench.run_des56_rtl ops in
      Alcotest.(check int) "empty" 0 (List.length r.metrics));
    case "metrics_json carries the schema version" (fun () ->
      let metrics = Metrics.create ~enabled:true () in
      let ops = Tabv_duv.Workload.des56 ~seed:7 ~count:4 () in
      let r = Tabv_duv.Testbench.run_des56_rtl ~metrics ops in
      let json =
        Tabv_core.Report_json.to_string
          (Tabv_duv.Testbench.metrics_json
             ~run:[ ("model", Tabv_core.Report_json.String "des56-rtl") ]
             r)
      in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
        scan 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
            (contains needle json))
        [ "\"schema\":1"; "\"run\":"; "\"metrics\":"; "\"properties\":";
          "\"engine\":"; "\"model\":\"des56-rtl\"";
          "\"kernel.activations\"" ]) ]

let suite =
  ( "obs",
    counter_cases @ histogram_cases @ probe_cases @ snapshot_cases
    @ merge_cases @ timer_cases @ span_cases @ checker_snapshot_cases
    @ integration_cases )
