open Tabv_duv

(* Negative tests: injected design bugs must be caught by the right
   properties, and only by them. *)

let case name f = Alcotest.test_case name `Quick f

let ops = Workload.des56 ~seed:3 ~count:8 ()

let failing_properties (result : Testbench.run_result) =
  List.filter_map
    (fun stat ->
      if stat.Testbench.failures <> [] then Some stat.Testbench.property_name else None)
    result.Testbench.checker_stats

let rtl_cases =
  [ case "late rdy caught by the next[n] properties, tolerated by until" (fun () ->
      let result =
        Testbench.run_des56_rtl ~fault:Des56_rtl.Rdy_one_cycle_late
          ~properties:Des56_props.all ops
      in
      let failing = failing_properties result in
      List.iter
        (fun expected ->
          Alcotest.(check bool)
            (expected ^ " fails") true (List.mem expected failing))
        [ "p3"; "p5" ];
      (* p2's until does not reference a precise instant (Sec. III-A):
         the response arriving one cycle later still discharges it. *)
      Alcotest.(check bool) "p2 tolerates the extra cycle" false (List.mem "p2" failing);
      (* p4 only watches rdy_next_next_cycle, which is on time. *)
      Alcotest.(check bool) "p4 unaffected" false (List.mem "p4" failing));
    case "stuck rdy_next_cycle caught by p3/p5/p7" (fun () ->
      let result =
        Testbench.run_des56_rtl ~fault:Des56_rtl.Rdy_next_cycle_stuck_low
          ~properties:Des56_props.all ops
      in
      let failing = failing_properties result in
      List.iter
        (fun expected ->
          Alcotest.(check bool)
            (expected ^ " fails") true (List.mem expected failing))
        [ "p3"; "p5"; "p7" ];
      Alcotest.(check bool) "p1 unaffected" false (List.mem "p1" failing);
      Alcotest.(check bool) "p9 unaffected" false (List.mem "p9" failing));
    case "zeroed result caught by p1" (fun () ->
      (* Force indata = 0 so p1's antecedent fires. *)
      let zero_ops = Workload.des56 ~seed:3 ~count:8 ~zero_fraction:1.0 () in
      let result =
        Testbench.run_des56_rtl ~fault:Des56_rtl.Result_zeroed
          ~properties:Des56_props.all zero_ops
      in
      let failing = failing_properties result in
      Alcotest.(check bool) "p1 fails" true (List.mem "p1" failing);
      Alcotest.(check bool) "p3 unaffected" false (List.mem "p3" failing));
    case "faulty model still computes until the fault point" (fun () ->
      let result =
        Testbench.run_des56_rtl ~fault:Des56_rtl.Rdy_next_cycle_stuck_low ops
      in
      Alcotest.(check int) "ops complete" (List.length ops)
        result.Testbench.completed_ops) ]

let tlm_cases =
  [ case "wrong TLM latency caught by the abstracted properties" (fun () ->
      (* A wrongly abstracted model (160 ns instead of 170) makes the
         read-end event land before the instant q1/q3 require: exactly
         the failure Theorem III.2 attributes to a wrong abstraction. *)
      let result =
        Testbench.run_des56_tlm_at ~model_latency_ns:160
          ~properties:(Des56_props.tlm_auto_safe ()) ops
      in
      let failing = failing_properties result in
      Alcotest.(check bool) "q3 fails" true (List.mem "q3" failing));
    case "correct TLM latency passes the same properties" (fun () ->
      let result =
        Testbench.run_des56_tlm_at ~properties:(Des56_props.tlm_auto_safe ()) ops
      in
      Alcotest.(check int) "no failures" 0 (Testbench.total_failures result));
    case "slow TLM model also caught" (fun () ->
      let result =
        Testbench.run_des56_tlm_at ~model_latency_ns:180
          ~properties:(Des56_props.tlm_auto_safe ()) ops
      in
      Alcotest.(check bool) "failures" true (Testbench.total_failures result > 0)) ]

(* --- generic fault plans (lib/fault + Duv_fault catalog) -------------- *)

module F = Tabv_fault.Fault
module K = Tabv_sim.Kernel
module J = Tabv_core.Report_json
module Detect = Tabv_checker.Detect

(* indata = 0 on every op so the p1/q1 antecedents fire. *)
let zero_ops = Workload.des56 ~seed:3 ~count:8 ~zero_fraction:1.0 ()

let catalog_plan level name =
  match Duv_fault.plan_for Duv_fault.Des56 level name with
  | Some plan -> plan
  | None -> Alcotest.failf "no %s carrier for %s" name
              (Duv_fault.level_to_string level)

let plan_cases =
  [ case "catalog saboteur at RTL is caught by p1" (fun () ->
      let result =
        Testbench.run_des56_rtl ~properties:Des56_props.all
          ~fault_plan:(catalog_plan Duv_fault.Rtl "out_stuck0") zero_ops
      in
      Alcotest.(check bool) "triggered" true (result.Testbench.faults_triggered > 0);
      Alcotest.(check bool) "p1 fails" true
        (List.mem "p1" (failing_properties result)));
    case "same conceptual fault at TLM-CA is caught by the re-used suite"
      (fun () ->
        let result =
          Testbench.run_des56_tlm_ca ~properties:Des56_props.all
            ~fault_plan:(catalog_plan Duv_fault.Tlm_ca "out_stuck0") zero_ops
        in
        Alcotest.(check bool) "triggered" true
          (result.Testbench.faults_triggered > 0);
        Alcotest.(check bool) "p1 fails" true
          (List.mem "p1" (failing_properties result)));
    case "same conceptual fault at TLM-AT is caught by the abstracted suite"
      (fun () ->
        let result =
          Testbench.run_des56_tlm_at
            ~properties:(Des56_props.tlm_reviewed ())
            ~fault_plan:(catalog_plan Duv_fault.Tlm_at "out_stuck0") zero_ops
        in
        Alcotest.(check bool) "triggered" true
          (result.Testbench.faults_triggered > 0);
        Alcotest.(check bool) "failures" true
          (Testbench.total_failures result > 0));
    case "never-exercised fault is attributed Latent, not Missed" (fun () ->
      let baseline =
        Testbench.run_des56_rtl ~properties:Des56_props.all zero_ops
      in
      let result =
        Testbench.run_des56_rtl ~properties:Des56_props.all
          ~fault_plan:(catalog_plan Duv_fault.Rtl "out_stuck0_late") zero_ops
      in
      Alcotest.(check int) "never triggered" 0 result.Testbench.faults_triggered;
      let verdicts =
        Detect.classify ~triggered:result.Testbench.faults_triggered
          ~baseline:baseline.Testbench.checker_stats
          ~faulted:result.Testbench.checker_stats
      in
      Alcotest.(check string) "suite verdict" "latent"
        (Detect.verdict_to_string (Detect.summary verdicts)));
    case "deprecated Des56_rtl.fault shim matches its generic saboteur"
      (fun () ->
        let legacy =
          Testbench.run_des56_rtl ~fault:Des56_rtl.Rdy_next_cycle_stuck_low
            ~properties:Des56_props.all ops
        in
        let generic =
          Testbench.run_des56_rtl
            ~fault_plan:(catalog_plan Duv_fault.Rtl "rdy_nc_stuck0")
            ~properties:Des56_props.all ops
        in
        Alcotest.(check (list string)) "same failing properties"
          (failing_properties legacy) (failing_properties generic);
        Alcotest.(check (list int64)) "same outputs"
          legacy.Testbench.outputs generic.Testbench.outputs);
    case "installing a plan against a missing carrier is rejected" (fun () ->
      let kernel = K.create () in
      let binding = { F.kernel; signals = []; sockets = [] } in
      let plan =
        F.plan ~name:"bad"
          [ F.Signal_fault
              { signal = "no_such"; fault = F.Stuck_at_0 { from_ns = 0 } } ]
      in
      match F.install binding plan with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ()) ]

(* --- resilience: every diverging injection ends in a diagnosis -------- *)

let diagnosis_cases =
  [ case "TLM Hang mutator deadlocks into a Starved diagnosis" (fun () ->
      let plan =
        match Duv_fault.hang_plan Duv_fault.Des56 Duv_fault.Tlm_ca ~index:1 with
        | Some plan -> plan
        | None -> Alcotest.fail "expected a TLM-CA initiator socket"
      in
      let result =
        Testbench.run_des56_tlm_ca ~properties:Des56_props.all ~fault_plan:plan
          ~guard:Tabv_campaign.Qualify.job_guard ops
      in
      (match result.Testbench.diagnosis with
       | K.Starved { waiting } ->
         Alcotest.(check bool) "a waiter is blocked" true (waiting >= 1)
       | d ->
         Alcotest.failf "expected starved, got %s" (K.diagnosis_to_string d));
      Alcotest.(check bool) "some ops never completed" true
        (result.Testbench.completed_ops < List.length ops));
    case "chaos crash is contained into a Process_crashed diagnosis" (fun () ->
      let result =
        Testbench.run_des56_rtl ~properties:Des56_props.all
          ~fault_plan:(Duv_fault.crash_plan ~at_ns:45 ~name:"test_crash")
          ~guard:Tabv_campaign.Qualify.job_guard ops
      in
      match result.Testbench.diagnosis with
      | K.Process_crashed { name; _ } ->
        Alcotest.(check string) "attributed" "test_crash" name
      | d ->
        Alcotest.failf "expected process_crashed, got %s"
          (K.diagnosis_to_string d));
    case "chaos livelock trips the delta cap into a Livelock diagnosis"
      (fun () ->
        let result =
          Testbench.run_des56_rtl ~properties:Des56_props.all
            ~fault_plan:(Duv_fault.livelock_plan ~at_ns:45)
            ~guard:Tabv_campaign.Qualify.job_guard ops
        in
        match result.Testbench.diagnosis with
        | K.Livelock { time; _ } -> Alcotest.(check int) "at injection" 45 time
        | d ->
          Alcotest.failf "expected livelock, got %s" (K.diagnosis_to_string d));
    case "run diagnosis is surfaced in the metrics JSON" (fun () ->
      let result = Testbench.run_des56_rtl ~properties:Des56_props.all ops in
      let doc = J.of_string (J.to_string (Testbench.metrics_json result)) in
      let run_section =
        match J.member "run" doc with
        | Some section -> section
        | None -> Alcotest.fail "no run section"
      in
      (match J.member "diagnosis" run_section with
       | Some diagnosis ->
         Alcotest.(check bool) "kind" true
           (J.member "kind" diagnosis = Some (J.String "completed"))
       | None -> Alcotest.fail "no diagnosis in the run section");
      Alcotest.(check bool) "faults_triggered" true
        (J.member "faults_triggered" run_section = Some (J.Int 0))) ]

(* --- plan JSON round-trips -------------------------------------------- *)

let full_vocabulary_plan =
  F.plan ~name:"everything"
    [ F.Signal_fault { signal = "s0"; fault = F.Stuck_at_0 { from_ns = 10 } };
      F.Signal_fault { signal = "s1"; fault = F.Stuck_at_1 { from_ns = 0 } };
      F.Signal_fault { signal = "s2"; fault = F.Bit_flip { bit = 3; at_ns = 40 } };
      F.Signal_fault
        { signal = "s3";
          fault = F.Glitch { bit = 0; from_ns = 170; duration_ns = 10 } };
      F.Tlm_mutation
        { socket = "init";
          fault =
            F.Corrupt_field
              { field = "out"; fault = F.Stuck_at_0 { from_ns = 0 } } };
      F.Tlm_mutation { socket = "init"; fault = F.Corrupt_data { index = 2; bit = 7 } };
      F.Tlm_mutation { socket = "init"; fault = F.Drop { index = 1 } };
      F.Tlm_mutation
        { socket = "init"; fault = F.Extra_delay { index = 0; delay_ns = 30 } };
      F.Tlm_mutation { socket = "init"; fault = F.Duplicate { index = 4 } };
      F.Tlm_mutation { socket = "init"; fault = F.Hang { index = 5 } };
      F.Chaos (F.Crash { at_ns = 45; name = "boom" });
      F.Chaos (F.Livelock_loop { at_ns = 90 });
      F.Chaos (F.Hard { at_ns = 120; failure = F.Abort });
      F.Chaos (F.Hard { at_ns = 150; failure = F.Alloc_storm });
      F.Chaos (F.Hard { at_ns = 180; failure = F.Busy_loop }) ]

let json_cases =
  [ case "every injection kind round-trips through JSON" (fun () ->
      match F.plan_of_json (F.plan_json full_vocabulary_plan) with
      | Ok plan ->
        Alcotest.(check bool) "equal" true
          (F.equal_plan full_vocabulary_plan plan)
      | Error msg -> Alcotest.fail msg);
    case "hard-failure names round-trip and unknown names are refused" (fun () ->
      List.iter
        (fun failure ->
          match F.hard_failure_of_name (F.hard_failure_name failure) with
          | Some round ->
            Alcotest.(check bool)
              (F.hard_failure_name failure ^ " round-trips")
              true (round = failure)
          | None ->
            Alcotest.failf "%s did not round-trip" (F.hard_failure_name failure))
        [ F.Abort; F.Alloc_storm; F.Busy_loop ];
      match F.hard_failure_of_name "segv" with
      | None -> ()
      | Some _ -> Alcotest.fail "accepted an unknown hard-failure name");
    case "malformed plan documents are rejected with Error" (fun () ->
      List.iter
        (fun doc ->
          match F.plan_of_string doc with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted %S" doc)
        [ "{ not json"; "{}"; {|{"plan":"p"}|};
          {|{"plan":"p","injections":[{"kind":"wat"}]}|};
          {|{"plan":"p","injections":[{"kind":"signal","signal":"s"}]}|} ]);
    Helpers.qtest ~count:100 "generated plans round-trip through JSON"
      QCheck.(pair small_nat (int_bound 8))
      (fun (seed, count) ->
        let plan =
          F.generate ~seed
            ~signals:[ ("a", 1); ("b", 8); ("c", 64) ]
            ~sockets:[ "init0"; "init1" ] ~horizon_ns:500 ~count
        in
        match F.plan_of_string (J.to_string (F.plan_json plan)) with
        | Ok round -> F.equal_plan plan round
        | Error _ -> false);
    Helpers.qtest ~count:50 "generation is a pure function of the seed"
      QCheck.small_nat
      (fun seed ->
        let gen () =
          F.generate ~seed ~signals:[ ("a", 1); ("b", 16) ]
            ~sockets:[ "init" ] ~horizon_ns:400 ~count:6
        in
        F.equal_plan (gen ()) (gen ())) ]

(* --- wire/transport fault plans (Fault.Net) --------------------------- *)

module N = F.Net

(* A versioned frame like every serve socket carries. *)
let net_frame payload = Tabv_core.Frame.encode ~version:1 payload

(* Concatenated bytes a fault-aware sender would actually write, up to
   (and excluding anything after) the first [`Reset]. *)
let written_bytes actions =
  let buf = Buffer.create 64 in
  let rec go = function
    | [] -> false
    | `Reset :: _ -> true
    | `Chunk s :: rest -> Buffer.add_string buf s; go rest
    | `Delay_ms _ :: rest -> go rest
  in
  let reset = go actions in
  (Buffer.contents buf, reset)

let net_full_vocabulary =
  N.plan ~name:"everything"
    [ N.Torn_frame { frame = 0; pieces = 3 };
      N.Truncated_header { frame = 1; keep = 4 };
      N.Corrupt_length { frame = 2; digit = 5 };
      N.Corrupt_version { frame = 3 };
      N.Slow_loris { frame = 4; delay_ms = 2 };
      N.Reset_mid_frame { frame = 5; after = 7 };
      N.Delay_frame { frame = 6; delay_ms = 3 };
      N.Duplicate_frame { frame = 7 };
      N.Handshake_garbage { bytes = 9 } ]

let net_cases =
  [ case "every net fault kind round-trips through JSON" (fun () ->
      match N.plan_of_json (N.plan_json net_full_vocabulary) with
      | Ok round ->
        Alcotest.(check string) "equal documents"
          (J.to_string (N.plan_json net_full_vocabulary))
          (J.to_string (N.plan_json round))
      | Error msg -> Alcotest.fail msg);
    case "net generation is a pure function of the seed" (fun () ->
      let gen seed = N.generate ~seed ~frames:10 ~count:8 in
      Alcotest.(check string) "same seed, same plan"
        (J.to_string (N.plan_json (gen 7)))
        (J.to_string (N.plan_json (gen 7)));
      Alcotest.(check bool) "different seeds differ" true
        (J.to_string (N.plan_json (gen 7))
         <> J.to_string (N.plan_json (gen 8))));
    case "an unfaulted frame passes through verbatim" (fun () ->
      let armed = N.arm N.no_faults in
      let frame = net_frame "hello" in
      Alcotest.(check bool) "exactly one plain chunk" true
        (N.apply armed frame = [ `Chunk frame ]);
      Alcotest.(check int) "counted" 1 (N.frames_sent armed);
      Alcotest.(check int) "nothing triggered" 0 (N.net_triggered armed));
    case "structure-preserving faults conserve the frame bytes" (fun () ->
      (* Torn and slow-loris sends reshape the writes, not the bytes:
         the concatenation must be the exact frame.  (This is the
         invariant whose violation would turn a chaos client into a
         client that silently sends nothing.) *)
      List.iter
        (fun (name, fault, copies) ->
          let armed = N.arm (N.plan ~name [ fault ]) in
          let frame = net_frame "payload-under-test" in
          let bytes, reset = written_bytes (N.apply armed frame) in
          Alcotest.(check string)
            (name ^ " conserves the frame")
            (String.concat "" (List.init copies (fun _ -> frame)))
            bytes;
          Alcotest.(check bool) (name ^ " never resets") false reset;
          Alcotest.(check int) (name ^ " triggered") 1 (N.net_triggered armed))
        [ ("torn", N.Torn_frame { frame = 0; pieces = 4 }, 1);
          ("slow-loris", N.Slow_loris { frame = 0; delay_ms = 1 }, 1);
          ("delay", N.Delay_frame { frame = 0; delay_ms = 1 }, 1);
          ("duplicate", N.Duplicate_frame { frame = 0 }, 2) ]);
    case "structural faults send a strict mangling and then reset" (fun () ->
      let frame = net_frame "payload-under-test" in
      List.iter
        (fun (name, fault) ->
          let armed = N.arm (N.plan ~name [ fault ]) in
          let bytes, reset = written_bytes (N.apply armed frame) in
          Alcotest.(check bool) (name ^ " ends in a reset") true reset;
          Alcotest.(check bool)
            (name ^ " writes less than, or a corruption of, the frame")
            true
            (bytes <> frame && String.length bytes <= String.length frame))
        [ ("truncated-header", N.Truncated_header { frame = 0; keep = 4 });
          ("corrupt-length", N.Corrupt_length { frame = 0; digit = 5 });
          ("corrupt-version", N.Corrupt_version { frame = 0 });
          ("reset-mid-frame", N.Reset_mid_frame { frame = 0; after = 7 }) ]);
    case "handshake garbage precedes frame 0 only and is never hex" (fun () ->
      let armed =
        N.arm (N.plan ~name:"hs" [ N.Handshake_garbage { bytes = 16 } ])
      in
      let frame = net_frame "first" in
      (match N.apply armed frame with
       | `Chunk garbage :: rest ->
         Alcotest.(check int) "requested garbage size" 16
           (String.length garbage);
         Alcotest.(check bool) "reader fails on the first byte" false
           (String.contains "0123456789abcdef" garbage.[0]);
         let bytes, reset = written_bytes rest in
         Alcotest.(check string) "the real frame follows" frame bytes;
         Alcotest.(check bool) "no reset" false reset
       | _ -> Alcotest.fail "expected a garbage prelude");
      Alcotest.(check bool) "frame 1 is clean" true
        (N.apply armed (net_frame "second") = [ `Chunk (net_frame "second") ]));
    case "latent faults never trigger and the counters say so" (fun () ->
      let armed =
        N.arm (N.plan ~name:"latent" [ N.Torn_frame { frame = 99; pieces = 2 } ])
      in
      for i = 0 to 4 do
        let frame = net_frame (string_of_int i) in
        Alcotest.(check bool) "clean passthrough" true
          (N.apply armed frame = [ `Chunk frame ])
      done;
      Alcotest.(check int) "five frames counted" 5 (N.frames_sent armed);
      Alcotest.(check int) "one fault armed" 1 (N.armed_faults armed);
      Alcotest.(check int) "zero triggered" 0 (N.net_triggered armed));
    case "generated net plans conserve bytes on every non-reset frame" (fun () ->
      (* Sweep several seeds through a whole client lifetime: whatever
         the drawn faults, a frame's written bytes must be the frame
         itself (possibly doubled, possibly after garbage) unless the
         actions end in a reset — a reset is the only licence to write
         fewer or different bytes. *)
      List.iter
        (fun seed ->
          let armed = N.arm (N.generate ~seed ~frames:10 ~count:8) in
          for i = 0 to 11 do
            let frame = net_frame (Printf.sprintf "frame-%d-%d" seed i) in
            let bytes, reset = written_bytes (N.apply armed frame) in
            if not reset then
              let ok =
                bytes = frame
                || bytes = frame ^ frame
                || (String.length bytes > String.length frame
                    && String.ends_with ~suffix:frame bytes)
              in
              Alcotest.(check bool)
                (Printf.sprintf "seed %d frame %d conserves bytes" seed i)
                true ok
          done)
        [ 1; 2; 3; 4; 5 ]) ]

(* --- qualification campaign ------------------------------------------- *)

let qualify_cases =
  [ Alcotest.test_case "qualification reports are worker-count independent"
      `Slow (fun () ->
        let open Tabv_campaign in
        let report workers =
          J.to_string
            (Qualify.report_json
               (Qualify.run ~workers ~duv:Campaign.Des56
                  ~levels:[ Campaign.Rtl; Campaign.Tlm_ca ] ~seed:1 ~ops:8 ()))
        in
        Alcotest.(check string) "1 worker = 4 workers" (report 1) (report 4));
    Alcotest.test_case "RTL detections carry over to TLM-CA (re-use claim)"
      `Slow (fun () ->
        let open Tabv_campaign in
        let report =
          Qualify.run ~workers:2 ~duv:Campaign.Des56
            ~levels:[ Campaign.Rtl; Campaign.Tlm_ca ] ~seed:1 ~ops:40 ()
        in
        Alcotest.(check (list string)) "no cross-level regressions" []
          report.Qualify.regressions;
        Alcotest.(check bool) "resilience scenarios all matched" true
          (List.for_all (fun s -> s.Qualify.matched) report.Qualify.resilience);
        Alcotest.(check bool) "ok" true (Qualify.ok report);
        List.iter
          (fun (lr : Qualify.level_report) ->
            Alcotest.(check bool)
              (Campaign.level_name lr.Qualify.level ^ " detects something")
              true (lr.Qualify.detected > 0);
            Alcotest.(check bool)
              (Campaign.level_name lr.Qualify.level ^ " clean baseline")
              true
              (lr.Qualify.baseline_failures = 0
               && lr.Qualify.baseline_diagnosis = K.Completed))
          report.Qualify.levels) ]

let suite =
  ( "fault_injection",
    rtl_cases @ tlm_cases @ plan_cases @ diagnosis_cases @ json_cases
    @ net_cases @ qualify_cases )
