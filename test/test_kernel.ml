open Tabv_sim

let run_kernel_case name f = Alcotest.test_case name `Quick f

let scheduling_cases =
  [ run_kernel_case "time starts at zero" (fun () ->
      let k = Kernel.create () in
      Alcotest.(check int) "now" 0 (Kernel.now k));
    run_kernel_case "timed actions run in time order" (fun () ->
      let k = Kernel.create () in
      let log = ref [] in
      Kernel.schedule_at k ~time:30 (fun () -> log := 30 :: !log);
      Kernel.schedule_at k ~time:10 (fun () -> log := 10 :: !log);
      Kernel.schedule_at k ~time:20 (fun () -> log := 20 :: !log);
      let final = Kernel.run k in
      Alcotest.(check (list int)) "order" [ 10; 20; 30 ] (List.rev !log);
      Alcotest.(check int) "final time" 30 final);
    run_kernel_case "same-time actions run FIFO" (fun () ->
      let k = Kernel.create () in
      let log = ref [] in
      List.iter
        (fun i -> Kernel.schedule_at k ~time:10 (fun () -> log := i :: !log))
        [ 1; 2; 3 ];
      ignore (Kernel.run k);
      Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log));
    run_kernel_case "scheduling in the past rejected" (fun () ->
      let k = Kernel.create () in
      Kernel.schedule_at k ~time:50 (fun () ->
        match Kernel.schedule_at k ~time:20 ignore with
        | () -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
      ignore (Kernel.run k));
    run_kernel_case "negative delay rejected" (fun () ->
      let k = Kernel.create () in
      match Kernel.schedule_after k ~delay:(-1) ignore with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
    run_kernel_case "until horizon stops before later events" (fun () ->
      let k = Kernel.create () in
      let fired = ref [] in
      Kernel.schedule_at k ~time:10 (fun () -> fired := 10 :: !fired);
      Kernel.schedule_at k ~time:100 (fun () -> fired := 100 :: !fired);
      let final = Kernel.run ~until:50 k in
      Alcotest.(check (list int)) "fired" [ 10 ] (List.rev !fired);
      Alcotest.(check int) "stopped at" 10 final);
    run_kernel_case "stop ends the run" (fun () ->
      let k = Kernel.create () in
      let fired = ref 0 in
      Kernel.schedule_at k ~time:10 (fun () ->
        incr fired;
        Kernel.stop k);
      Kernel.schedule_at k ~time:20 (fun () -> incr fired);
      ignore (Kernel.run k);
      Alcotest.(check int) "only first" 1 !fired);
    run_kernel_case "delta cycles at one instant" (fun () ->
      let k = Kernel.create () in
      let deltas = ref [] in
      Kernel.schedule_at k ~time:10 (fun () ->
        deltas := Kernel.delta k :: !deltas;
        Kernel.schedule_next_delta k (fun () ->
          deltas := Kernel.delta k :: !deltas;
          Kernel.schedule_next_delta k (fun () -> deltas := Kernel.delta k :: !deltas)));
      ignore (Kernel.run k);
      Alcotest.(check (list int)) "deltas" [ 0; 1; 2 ] (List.rev !deltas));
    run_kernel_case "updates run between evaluation and delta phases" (fun () ->
      let k = Kernel.create () in
      let log = ref [] in
      Kernel.schedule_at k ~time:5 (fun () ->
        log := "eval" :: !log;
        Kernel.request_update k (fun () -> log := "update" :: !log);
        Kernel.schedule_next_delta k (fun () -> log := "delta" :: !log));
      ignore (Kernel.run k);
      Alcotest.(check (list string)) "phases" [ "eval"; "update"; "delta" ] (List.rev !log));
    run_kernel_case "activation count" (fun () ->
      let k = Kernel.create () in
      for i = 1 to 5 do
        Kernel.schedule_at k ~time:(i * 10) ignore
      done;
      ignore (Kernel.run k);
      Alcotest.(check int) "activations" 5 (Kernel.activation_count k)) ]

let event_cases =
  [ run_kernel_case "static subscribers persist" (fun () ->
      let k = Kernel.create () in
      let ev = Event.create k "e" in
      let count = ref 0 in
      Event.on_event ev (fun () -> incr count);
      Kernel.schedule_at k ~time:10 (fun () -> Event.notify ev);
      Kernel.schedule_at k ~time:20 (fun () -> Event.notify ev);
      ignore (Kernel.run k);
      Alcotest.(check int) "twice" 2 !count;
      Alcotest.(check int) "notifications" 2 (Event.notification_count ev));
    run_kernel_case "dynamic subscribers fire once" (fun () ->
      let k = Kernel.create () in
      let ev = Event.create k "e" in
      let count = ref 0 in
      Event.once ev (fun () -> incr count);
      Kernel.schedule_at k ~time:10 (fun () -> Event.notify ev);
      Kernel.schedule_at k ~time:20 (fun () -> Event.notify ev);
      ignore (Kernel.run k);
      Alcotest.(check int) "once" 1 !count);
    run_kernel_case "timed notification" (fun () ->
      let k = Kernel.create () in
      let ev = Event.create k "e" in
      let seen_at = ref (-1) in
      Event.once ev (fun () -> seen_at := Kernel.now k);
      Kernel.schedule_at k ~time:10 (fun () -> Event.notify_after ev ~delay:25);
      ignore (Kernel.run k);
      Alcotest.(check int) "time" 35 !seen_at) ]

let thread_cases =
  [ run_kernel_case "thread wait_ns" (fun () ->
      let k = Kernel.create () in
      let log = ref [] in
      Process.spawn k ~name:"t" (fun () ->
        log := (Kernel.now k, "start") :: !log;
        Process.wait_ns k 15;
        log := (Kernel.now k, "mid") :: !log;
        Process.wait_ns k 5;
        log := (Kernel.now k, "end") :: !log);
      ignore (Kernel.run k);
      Alcotest.(check (list (pair int string)))
        "timeline"
        [ (0, "start"); (15, "mid"); (20, "end") ]
        (List.rev !log));
    run_kernel_case "thread wait_event" (fun () ->
      let k = Kernel.create () in
      let ev = Event.create k "go" in
      let woke_at = ref (-1) in
      Process.spawn k ~name:"t" (fun () ->
        Process.wait_event ev;
        woke_at := Kernel.now k);
      Kernel.schedule_at k ~time:42 (fun () -> Event.notify ev);
      ignore (Kernel.run k);
      Alcotest.(check int) "woke" 42 !woke_at);
    run_kernel_case "wait_until rechecks predicate" (fun () ->
      let k = Kernel.create () in
      let ev = Event.create k "tick" in
      let counter = ref 0 in
      let done_at = ref (-1) in
      Process.spawn k ~name:"t" (fun () ->
        Process.wait_until ~on:ev (fun () -> !counter >= 3);
        done_at := Kernel.now k);
      let rec ticker time =
        Kernel.schedule_at k ~time (fun () ->
          incr counter;
          Event.notify ev;
          if !counter < 5 then ticker (time + 10))
      in
      ticker 10;
      ignore (Kernel.run k);
      Alcotest.(check int) "done after third tick" 30 !done_at);
    run_kernel_case "two threads interleave deterministically" (fun () ->
      let k = Kernel.create () in
      let log = ref [] in
      Process.spawn k ~name:"a" (fun () ->
        Process.wait_ns k 10;
        log := "a10" :: !log;
        Process.wait_ns k 10;
        log := "a20" :: !log);
      Process.spawn k ~name:"b" (fun () ->
        Process.wait_ns k 10;
        log := "b10" :: !log;
        Process.wait_ns k 15;
        log := "b25" :: !log);
      ignore (Kernel.run k);
      Alcotest.(check (list string)) "order" [ "a10"; "b10"; "a20"; "b25" ] (List.rev !log)) ]

let stress_cases =
  [ Helpers.qtest ~count:30 "heap delivers thousands of events in time order"
      QCheck.(list_of_size (QCheck.Gen.return 500) (int_bound 5000))
      (fun delays ->
        let k = Kernel.create () in
        let fired = ref [] in
        List.iteri
          (fun i delay ->
            Kernel.schedule_at k ~time:delay (fun () -> fired := (delay, i) :: !fired))
          delays;
        ignore (Kernel.run k);
        let fired = List.rev !fired in
        (* Non-decreasing times; FIFO among equal times. *)
        let rec ordered = function
          | (t1, i1) :: ((t2, i2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && i1 < i2)) && ordered rest
          | [ _ ] | [] -> true
        in
        List.length fired = List.length delays && ordered fired);
    Helpers.qtest ~count:30 "nested scheduling preserves causality"
      QCheck.(list_of_size (QCheck.Gen.return 100) (int_bound 50))
      (fun delays ->
        let k = Kernel.create () in
        let violations = ref 0 in
        List.iter
          (fun delay ->
            Kernel.schedule_at k ~time:delay (fun () ->
              let scheduled_at = Kernel.now k in
              Kernel.schedule_after k ~delay:(1 + (delay mod 7)) (fun () ->
                if Kernel.now k < scheduled_at then incr violations)))
          delays;
        ignore (Kernel.run k);
        !violations = 0) ]

(* Watchdogs and end-of-run diagnosis: the graceful-degradation layer
   the fault-qualification campaigns rely on.  Every diverging
   behaviour (delta livelock, runaway time advance, process crash,
   deadlocked waiters) must terminate with the matching structured
   diagnosis instead of hanging or killing the process. *)
let watchdog_cases =
  [ run_kernel_case "clean run diagnoses Completed" (fun () ->
      let k = Kernel.create () in
      Kernel.schedule_at k ~time:10 ignore;
      ignore (Kernel.run k);
      Alcotest.(check bool) "completed" true
        (Kernel.last_diagnosis k = Kernel.Completed);
      Alcotest.(check int) "no trips" 0 (Kernel.watchdog_trip_count k));
    run_kernel_case "delta cap diagnoses Livelock at the diverging instant"
      (fun () ->
        let k = Kernel.create () in
        let rec spin () = Kernel.schedule_next_delta k spin in
        Kernel.schedule_at k ~time:40 spin;
        let guard = { Kernel.default_guard with max_delta_cycles = Some 50 } in
        ignore (Kernel.run ~guard k);
        (match Kernel.last_diagnosis k with
         | Kernel.Livelock { time; delta_cycles } ->
           Alcotest.(check int) "time" 40 time;
           Alcotest.(check bool) "cap reached" true (delta_cycles >= 50)
         | d ->
           Alcotest.failf "expected livelock, got %s"
             (Kernel.diagnosis_to_string d));
        Alcotest.(check int) "one trip" 1 (Kernel.watchdog_trip_count k));
    run_kernel_case "step budget diagnoses Budget_exhausted" (fun () ->
      let k = Kernel.create () in
      let rec tick time =
        Kernel.schedule_at k ~time (fun () -> tick (time + 10))
      in
      tick 10;
      let guard = { Kernel.default_guard with max_steps = Some 25 } in
      ignore (Kernel.run ~guard k);
      match Kernel.last_diagnosis k with
      | Kernel.Budget_exhausted { steps } ->
        Alcotest.(check int) "steps" 25 steps
      | d ->
        Alcotest.failf "expected budget_exhausted, got %s"
          (Kernel.diagnosis_to_string d));
    run_kernel_case "contained crash is attributed and the run continues"
      (fun () ->
        let k = Kernel.create () in
        let survivor = ref false in
        Process.spawn k ~name:"victim" (fun () ->
          Process.wait_ns k 10;
          failwith "boom");
        Kernel.schedule_at k ~time:20 (fun () -> survivor := true);
        let guard = { Kernel.default_guard with contain_crashes = true } in
        ignore (Kernel.run ~guard k);
        Alcotest.(check bool) "later event still fired" true !survivor;
        Alcotest.(check int) "contained" 1 (Kernel.contained_crash_count k);
        match Kernel.last_diagnosis k with
        | Kernel.Process_crashed { name; error } ->
          Alcotest.(check string) "name" "victim" name;
          Alcotest.(check bool) "error recorded" true (String.length error > 0)
        | d ->
          Alcotest.failf "expected process_crashed, got %s"
            (Kernel.diagnosis_to_string d));
    run_kernel_case "uncontained crash still propagates" (fun () ->
      let k = Kernel.create () in
      Process.spawn k ~name:"victim" (fun () -> failwith "boom");
      match Kernel.run k with
      | _ -> Alcotest.fail "expected the exception to propagate"
      | exception Failure _ -> ());
    run_kernel_case "deadlock regression: starved waiters are diagnosed"
      (fun () ->
        (* A process blocks on an event nobody ever notifies.  The run
           must terminate (no events left) and report the blocked
           waiter instead of claiming completion. *)
        let k = Kernel.create () in
        let never = Event.create k "never" in
        Process.spawn k ~name:"blocked" (fun () -> Process.wait_event never);
        Kernel.schedule_at k ~time:10 ignore;
        ignore (Kernel.run k);
        match Kernel.last_diagnosis k with
        | Kernel.Starved { waiting } -> Alcotest.(check int) "waiting" 1 waiting
        | d ->
          Alcotest.failf "expected starved, got %s"
            (Kernel.diagnosis_to_string d)) ]

let suite =
  ( "kernel",
    scheduling_cases @ event_cases @ thread_cases @ watchdog_cases
    @ stress_cases )
