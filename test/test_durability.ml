(* Durable-storage hardening: the [Tabv_core.Io] seam (hook decisions,
   atomic whole-file commits), the CRC32 framing, the [Fault.Io]
   filesystem-fault vocabulary, and the corruption contract of both
   durable formats — journals and binary traces — under exhaustive
   truncate-at-every-byte and flip-every-byte sweeps: the only legal
   outcomes are a clean refusal or salvage of the CRC-verified prefix,
   never replayed garbage. *)

module J = Tabv_core.Report_json
module Io = Tabv_core.Io
module Crc32 = Tabv_core.Crc32
module FIo = Tabv_fault.Fault.Io
module Journal = Tabv_campaign.Journal
module Writer = Tabv_trace.Writer
module Reader = Tabv_trace.Reader

let case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let with_temp_dir f =
  let dir = Filename.temp_file "tabv_test_dur" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun entry ->
          try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* A hook that passes everything through; tests override one field. *)
let pass_hook =
  {
    Io.on_write = (fun ~path:_ ~offset:_ ~len:_ -> Io.Write_through);
    on_fsync = (fun ~path:_ -> Io.Fsync_through);
    on_rename = (fun ~src:_ ~dst:_ -> Io.Op_through);
    on_close = (fun ~path:_ -> Io.Op_through);
  }

let with_hook hook f =
  Io.interpose hook;
  Fun.protect ~finally:Io.clear_interpose f

(* --- CRC32 --------------------------------------------------------- *)

let crc_cases =
  [ case "known vectors" (fun () ->
      Alcotest.(check int) "empty" 0 (Crc32.string "");
      (* The IEEE 802.3 check value for "123456789". *)
      Alcotest.(check int) "123456789" 0xcbf43926 (Crc32.string "123456789");
      Alcotest.(check string) "hex" "cbf43926" (Crc32.to_hex 0xcbf43926));
    case "of_hex accepts exactly the to_hex image" (fun () ->
      Alcotest.(check (option int)) "round trip" (Some 0xcbf43926)
        (Crc32.of_hex "cbf43926");
      Alcotest.(check (option int)) "uppercase refused" None
        (Crc32.of_hex "CBF43926");
      Alcotest.(check (option int)) "short refused" None (Crc32.of_hex "12345");
      Alcotest.(check (option int)) "long refused" None
        (Crc32.of_hex "123456789");
      Alcotest.(check (option int)) "non-hex refused" None
        (Crc32.of_hex "cbf4392g"));
    qtest "update composes over any split" QCheck.(pair string small_nat)
      (fun (s, k) ->
        let k = if String.length s = 0 then 0 else k mod (String.length s + 1) in
        let left = Crc32.update 0 s ~pos:0 ~len:k in
        let both = Crc32.update left s ~pos:k ~len:(String.length s - k) in
        both = Crc32.string s);
    qtest "byte fold equals string" QCheck.string (fun s ->
      String.fold_left Crc32.byte 0 s = Crc32.string s);
    qtest "single byte change is always detected" QCheck.(pair string small_nat)
      (fun (s, i) ->
        String.length s = 0
        ||
        let i = i mod String.length s in
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
        Crc32.string (Bytes.to_string b) <> Crc32.string s) ]

(* --- the Io seam --------------------------------------------------- *)

let io_cases =
  [ case "create / write / fsync / close writes the bytes" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "plain.dat" in
        let t = Io.create path in
        Alcotest.(check int) "nothing flushed yet" 0 (Io.flushed t);
        Io.write t "hello ";
        Io.write t "world";
        Alcotest.(check int) "write stages only" 0 (Io.flushed t);
        Io.fsync t;
        Alcotest.(check int) "flushed offset" 11 (Io.flushed t);
        Io.close t;
        Io.close t (* idempotent *);
        Alcotest.(check string) "contents" "hello world" (read_file path);
        match Io.write t "x" with
        | () -> Alcotest.fail "write after close accepted"
        | exception Invalid_argument _ -> ()));
    case "append resumes at the current file size" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "log.dat" in
        write_raw path "abc";
        let t = Io.append path in
        Alcotest.(check int) "offset adopts size" 3 (Io.flushed t);
        Io.write t "def";
        Io.close t;
        Alcotest.(check string) "appended" "abcdef" (read_file path)));
    case "Write_error fails the flush and writes nothing" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "eio.dat" in
        let t = Io.create path in
        Io.write t "doomed";
        with_hook
          { pass_hook with
            on_write = (fun ~path:_ ~offset:_ ~len:_ -> Io.Write_error Unix.EIO)
          }
          (fun () ->
            match Io.flush t with
            | () -> Alcotest.fail "faulted write succeeded"
            | exception Io.Io_error { op; error; _ } ->
              Alcotest.(check string) "op" "write" op;
              Alcotest.(check bool) "error" true (error = Unix.EIO));
        Io.close_noerr t;
        Alcotest.(check string) "nothing reached the file" "" (read_file path)));
    case "Write_short persists exactly the torn prefix" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "torn.dat" in
        let t = Io.create path in
        Io.write t "0123456789";
        with_hook
          { pass_hook with
            on_write =
              (fun ~path:_ ~offset:_ ~len:_ ->
                Io.Write_short { bytes = 4; error = Unix.ENOSPC })
          }
          (fun () ->
            match Io.flush t with
            | () -> Alcotest.fail "short write reported success"
            | exception Io.Io_error { error; _ } ->
              Alcotest.(check bool) "enospc" true (error = Unix.ENOSPC));
        Alcotest.(check int) "offset counts the torn bytes" 4 (Io.flushed t);
        Io.close_noerr t;
        Alcotest.(check string) "torn prefix on disk" "0123" (read_file path)));
    case "Fsync_lost reports success without failing" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "lie.dat" in
        let t = Io.create path in
        Io.write t "acked";
        with_hook
          { pass_hook with on_fsync = (fun ~path:_ -> Io.Fsync_lost) }
          (fun () -> Io.fsync t);
        Io.close t;
        Alcotest.(check string) "bytes still written" "acked" (read_file path)));
    case "write_file_atomic commits and leaves no temp file" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "report.json" in
        Io.write_file_atomic ~path "v1";
        Io.write_file_atomic ~path "v2";
        Alcotest.(check string) "latest contents" "v2" (read_file path);
        Alcotest.(check bool) "no temp file" false
          (Sys.file_exists (Io.temp_path path))));
    case "a failed rename keeps the old file and unlinks the temp" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "report.json" in
        Io.write_file_atomic ~path "old";
        with_hook
          { pass_hook with
            on_rename = (fun ~src:_ ~dst:_ -> Io.Op_error Unix.EIO)
          }
          (fun () ->
            match Io.write_file_atomic ~path "new" with
            | () -> Alcotest.fail "faulted rename succeeded"
            | exception Io.Io_error { op; _ } ->
              Alcotest.(check string) "op" "rename" op);
        Alcotest.(check string) "old contents intact" "old" (read_file path);
        Alcotest.(check bool) "temp unlinked" false
          (Sys.file_exists (Io.temp_path path))));
    case "a failed write keeps the old file and unlinks the temp" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "report.json" in
        Io.write_file_atomic ~path "old";
        with_hook
          { pass_hook with
            on_write = (fun ~path:_ ~offset:_ ~len:_ -> Io.Write_error Unix.EIO)
          }
          (fun () ->
            match Io.write_file_atomic ~path "new" with
            | () -> Alcotest.fail "faulted write succeeded"
            | exception Io.Io_error { op; _ } ->
              Alcotest.(check string) "op" "write" op);
        Alcotest.(check string) "old contents intact" "old" (read_file path);
        Alcotest.(check bool) "temp unlinked" false
          (Sys.file_exists (Io.temp_path path))));
    case "temp path naming" (fun () ->
      Alcotest.(check string) "suffix" (("a/b.journal") ^ Io.temp_suffix)
        (Io.temp_path "a/b.journal");
      Alcotest.(check bool) "is_temp" true (Io.is_temp_path "x/y.json.tmp");
      Alcotest.(check bool) "not temp" false (Io.is_temp_path "x/y.json")) ]

(* --- Fault.Io vocabulary ------------------------------------------- *)

let all_kinds_plan =
  FIo.plan ~name:"everything" ~scope:".journal"
    [ FIo.Short_write { op = 1; keep = 3 };
      FIo.Enospc_after { bytes = 100 };
      FIo.Write_eio { op = 2 };
      FIo.Fsync_eio { op = 3 };
      FIo.Fsync_lie { op = 4 };
      FIo.Rename_fail { op = 5 };
      FIo.Power_cut { op = 6 } ]

let fault_io_cases =
  [ case "plans survive the wire byte-for-byte" (fun () ->
      let emitted = J.to_string (FIo.plan_json all_kinds_plan) in
      match FIo.plan_of_json (J.of_string emitted) with
      | Error e -> Alcotest.fail e
      | Ok back ->
        Alcotest.(check string) "re-emission identical" emitted
          (J.to_string (FIo.plan_json back));
        Alcotest.(check int) "fault count" 7 (FIo.fault_count back));
    case "plan_of_json rejects garbage" (fun () ->
      (match FIo.plan_of_json (J.String "nope") with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "non-object accepted");
      match
        FIo.plan_of_json
          (J.Assoc
             [ ("plan", J.String "p");
               ("scope", J.String "");
               ("faults", J.List [ J.Assoc [ ("kind", J.String "meteor") ] ]) ])
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown fault kind accepted");
    case "generate is a pure function of its arguments" (fun () ->
      let p seed = FIo.generate ~seed ~scope:".journal" ~ops:40 ~count:6 in
      Alcotest.(check string) "same seed, same plan"
        (J.to_string (FIo.plan_json (p 5)))
        (J.to_string (FIo.plan_json (p 5)));
      Alcotest.(check int) "count honoured" 6 (FIo.fault_count (p 5));
      Alcotest.(check bool) "different seeds differ" true
        (J.to_string (FIo.plan_json (p 1))
        <> J.to_string (FIo.plan_json (p 2))));
    case "out-of-scope files never trigger" (fun () ->
      with_temp_dir (fun dir ->
        let armed =
          FIo.arm
            (FIo.plan ~name:"scoped" ~scope:".journal"
               [ FIo.Write_eio { op = 0 } ])
        in
        FIo.install armed;
        Fun.protect ~finally:FIo.uninstall (fun () ->
            let t = Io.create (Filename.concat dir "other.data") in
            Io.write t "untouched";
            Io.fsync t;
            Io.close t);
        Alcotest.(check int) "nothing fired" 0 (FIo.io_triggered armed);
        Alcotest.(check string) "bytes intact" "untouched"
          (read_file (Filename.concat dir "other.data")))) ]

(* --- journal under injected filesystem faults ---------------------- *)

let journal_open ~path ~resume =
  match Journal.open_ ~path ~kind:"t" ~fingerprint:"fp" ~resume () with
  | Ok j -> j
  | Error e -> Alcotest.fail e

let journal_fault_cases =
  [ case "a torn append salvages to the last durable record" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "run.journal" in
        (* Write op 0 is the header's temp file (a [.tmp] sibling is in
           scope); op 2 — the second append — is cut short. *)
        let armed =
          FIo.arm
            (FIo.plan ~name:"torn" ~scope:".journal"
               [ FIo.Short_write { op = 2; keep = 5 } ])
        in
        FIo.install armed;
        Fun.protect ~finally:FIo.uninstall (fun () ->
            let j = journal_open ~path ~resume:false in
            Journal.append j ~id:0 (J.Int 100);
            (match Journal.append j ~id:1 (J.Int 101) with
             | () -> Alcotest.fail "torn append reported success"
             | exception Io.Io_error { error; _ } ->
               Alcotest.(check bool) "enospc" true (error = Unix.ENOSPC));
            Journal.close j);
        Alcotest.(check int) "the fault fired" 1 (FIo.io_triggered armed);
        let j = journal_open ~path ~resume:true in
        Alcotest.(check bool) "only the durable record replays" true
          (Journal.replayed j = [ (0, J.Int 100) ]);
        Alcotest.(check bool) "torn bytes dropped" true
          (Journal.truncated_bytes j > 0);
        Journal.append j ~id:1 (J.Int 101);
        Journal.close j;
        let j = journal_open ~path ~resume:true in
        Alcotest.(check bool) "clean after re-append" true
          (Journal.replayed j = [ (0, J.Int 100); (1, J.Int 101) ]);
        Journal.close j));
    case "a lying fsync loses exactly the unsynced suffix" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "run.journal" in
        (* Fsync op 0 syncs the header temp; the lie hits op 3 — the
           last append's fsync — so its record is acked but volatile. *)
        let armed =
          FIo.arm
            (FIo.plan ~name:"lie" ~scope:".journal"
               [ FIo.Fsync_lie { op = 3 } ])
        in
        FIo.install armed;
        Fun.protect ~finally:FIo.uninstall (fun () ->
            let j = journal_open ~path ~resume:false in
            Journal.append j ~id:0 (J.Int 100);
            Journal.append j ~id:1 (J.Int 101);
            Journal.append j ~id:2 (J.Int 102);
            Journal.close j);
        let durable = FIo.durable_prefix armed path in
        let full = read_file path in
        Alcotest.(check bool) "acked bytes beyond the durable prefix" true
          (durable < String.length full);
        (* The crash image keeps only what an honest fsync covered. *)
        write_raw path (String.sub full 0 durable);
        let j = journal_open ~path ~resume:true in
        Alcotest.(check bool) "unsynced record lost, rest salvaged" true
          (Journal.replayed j = [ (0, J.Int 100); (1, J.Int 101) ]);
        Journal.close j));
    case "after a power cut every primitive fails; resume salvages" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "run.journal" in
        let armed =
          FIo.arm
            (FIo.plan ~name:"cut" ~scope:".journal"
               [ FIo.Power_cut { op = 2 } ])
        in
        FIo.install armed;
        Fun.protect ~finally:FIo.uninstall (fun () ->
            let j = journal_open ~path ~resume:false in
            Journal.append j ~id:0 (J.Int 100);
            (match Journal.append j ~id:1 (J.Int 101) with
             | () -> Alcotest.fail "write after the power cut succeeded"
             | exception Io.Io_error _ -> ());
            (match Journal.append j ~id:2 (J.Int 102) with
             | () -> Alcotest.fail "the machine is dead; nothing may succeed"
             | exception Io.Io_error _ -> ());
            Journal.close j);
        let j = journal_open ~path ~resume:true in
        Alcotest.(check bool) "pre-cut record replays" true
          (Journal.replayed j = [ (0, J.Int 100) ]);
        Journal.close j));
    case "gc_stale sweeps orphaned temp files regardless of age" (fun () ->
      with_temp_dir (fun dir ->
        let orphan = Filename.concat dir "dead.journal.tmp" in
        let live = Filename.concat dir "live.journal" in
        write_raw orphan "half a header";
        write_raw live "fresh";
        let now = (Unix.stat live).Unix.st_mtime in
        let deleted = Journal.gc_stale ~now ~dir ~max_age_s:3600. () in
        Alcotest.(check (list string)) "only the orphan" [ orphan ] deleted;
        Alcotest.(check bool) "orphan gone" false (Sys.file_exists orphan);
        Alcotest.(check bool) "live journal kept" true (Sys.file_exists live))) ]

(* --- exhaustive corruption sweeps ---------------------------------- *)

(* [l] is a prefix of [r] (structural equality element-wise). *)
let rec is_prefix l r =
  match (l, r) with
  | [], _ -> true
  | _, [] -> false
  | x :: l, y :: r -> x = y && is_prefix l r

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Bytes.to_string b

let journal_sweep_cases =
  [ case "truncating a journal at any byte salvages a record prefix" (fun () ->
      with_temp_dir (fun dir ->
        let path = Filename.concat dir "run.journal" in
        let records = [ (0, J.Int 100); (1, J.Int 101); (2, J.Int 102) ] in
        let j = journal_open ~path ~resume:false in
        List.iter (fun (id, r) -> Journal.append j ~id r) records;
        Journal.close j;
        let full = read_file path in
        for cut = 0 to String.length full do
          write_raw path (String.sub full 0 cut);
          let j = journal_open ~path ~resume:true in
          if not (is_prefix (Journal.replayed j) records) then
            Alcotest.failf "cut at %d replayed out-of-prefix records" cut;
          if cut = String.length full && Journal.records j <> 3 then
            Alcotest.failf "uncut journal lost records";
          Journal.close j
        done));
    case "flipping any journal bit refuses or salvages, never garbage"
      (fun () ->
        with_temp_dir (fun dir ->
          let path = Filename.concat dir "run.journal" in
          let records = [ (0, J.Int 100); (1, J.Int 101); (2, J.Int 102) ] in
          let j = journal_open ~path ~resume:false in
          List.iter (fun (id, r) -> Journal.append j ~id r) records;
          Journal.close j;
          let full = read_file path in
          let refused = ref 0 and salvaged = ref 0 in
          for i = 0 to String.length full - 1 do
            write_raw path (flip_byte full i);
            match Journal.open_ ~path ~kind:"t" ~fingerprint:"fp" ~resume:true () with
            | Error _ -> incr refused (* a damaged header is fatal *)
            | Ok j ->
              incr salvaged;
              if not (is_prefix (Journal.replayed j) records) then
                Alcotest.failf "flip at %d replayed out-of-prefix records" i;
              if Journal.records j >= 3 then
                Alcotest.failf "flip at %d went undetected" i;
              Journal.close j
          done;
          (* Both regimes must actually occur: header flips refuse,
             record flips salvage. *)
          Alcotest.(check bool) "some flips refused" true (!refused > 0);
          Alcotest.(check bool) "some flips salvaged" true (!salvaged > 0))) ]

(* --- trace corruption sweeps --------------------------------------- *)

let trace_meta =
  { Tabv_trace.Meta.model = "sweep-model"; seed = 3; ops = 4; engine = "classic" }

let write_sweep_trace path =
  Writer.with_file ~path trace_meta (fun w ->
      let open Tabv_psl in
      Writer.span w ~label:"read" ~start_time:0 ~end_time:10;
      List.iter
        (fun (t, b, x) ->
          Writer.sample w ~time:t
            [ ("a", Expr.VBool b); ("x", Expr.VInt x) ])
        [ (10, true, 1); (20, false, 2); (30, true, 3); (40, false, -7) ];
      Writer.span w ~label:"write" ~start_time:15 ~end_time:35)

(* Stream everything, returning the entries surfaced before the first
   [Format_error] (if any) and where the damage was reported. *)
let drain path =
  match Reader.open_file path with
  | exception Reader.Format_error { offset; valid_prefix; _ } ->
    ([], Some (offset, valid_prefix))
  | t ->
    let acc = ref [] and err = ref None in
    (try
       let rec go () =
         match Reader.next t with
         | Some e ->
           acc := e :: !acc;
           go ()
         | None -> ()
       in
       go ()
     with Reader.Format_error { offset; valid_prefix; _ } ->
       err := Some (offset, valid_prefix));
    Reader.close t;
    (List.rev !acc, !err)

let trace_sweep_cases =
  [ case "truncating a trace at any byte reports the verified prefix"
      (fun () ->
        with_temp_dir (fun dir ->
          let path = Filename.concat dir "run.trace" in
          write_sweep_trace path;
          let full = read_file path in
          let clean, clean_err = drain path in
          Alcotest.(check bool) "clean trace reads clean" true
            (clean_err = None);
          for cut = 0 to String.length full - 1 do
            write_raw path (String.sub full 0 cut);
            match drain path with
            | _, None -> Alcotest.failf "cut at %d went undetected" cut
            | entries, Some (offset, valid_prefix) ->
              if not (is_prefix entries clean) then
                Alcotest.failf "cut at %d surfaced out-of-prefix entries" cut;
              if valid_prefix > cut then
                Alcotest.failf
                  "cut at %d claims a %d-byte verified prefix" cut valid_prefix;
              if offset < valid_prefix then
                Alcotest.failf "cut at %d reports damage inside the prefix" cut
          done));
    case "flipping any trace bit is detected; entries stay a prefix"
      (fun () ->
        with_temp_dir (fun dir ->
          let path = Filename.concat dir "run.trace" in
          write_sweep_trace path;
          let full = read_file path in
          let clean, _ = drain path in
          for i = 0 to String.length full - 1 do
            write_raw path (flip_byte full i);
            match drain path with
            | _, None -> Alcotest.failf "flip at %d went undetected" i
            | entries, Some _ ->
              if not (is_prefix entries clean) then
                Alcotest.failf "flip at %d surfaced out-of-prefix entries" i
          done)) ]

let suite =
  ( "durability",
    crc_cases @ io_cases @ fault_io_cases @ journal_fault_cases
    @ journal_sweep_cases @ trace_sweep_cases )
