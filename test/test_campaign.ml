(* Test suite for the multicore campaign runner (lib/campaign): job
   matrix expansion, manifest parsing, crash isolation with bounded
   retries, deterministic result merging — plus the domain-safety
   regression for the interning/progression universes the runner
   relies on (each worker domain owns a private Domain.DLS universe). *)

open Tabv_psl
open Tabv_campaign
module C = Campaign
module J = Tabv_core.Report_json

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* --- Domain.DLS universes --------------------------------------------- *)

(* One worker's whole checker workload: reset to a fresh universe,
   intern a family of formulas, progress one of them over a fixed
   input sequence, and report everything observable — verdict, node
   count, memo statistics.  Running this concurrently on several
   domains must give each domain the same answers as running it
   alone (universes are private, so no cross-domain interference). *)
let universe_probe () =
  let open Tabv_checker in
  Progression.reset_universe ();
  let formulas =
    [ "always(!a || next[2](b))"; "a until b"; "eventually(a && b)";
      "always(a -> eventually(b))" ]
  in
  let interned = List.map (fun s -> Interned.intern (Parser.formula_only s)) formulas in
  let ids = List.map Interned.id interned in
  let env (a, b) name =
    match name with
    | "a" -> Some (Expr.VBool a)
    | "b" -> Some (Expr.VBool b)
    | _ -> None
  in
  let inputs = [ (true, false); (true, true); (false, false); (true, true) ] in
  let ob = ref (Progression.of_formula (Parser.formula_only "a until b")) in
  List.iteri (fun i v -> ob := Progression.step ~time:(i * 10) (env v) !ob) inputs;
  let stats = Progression.cache_stats () in
  ( ids,
    Progression.verdict !ob,
    Interned.node_count (),
    stats.Progression.cache_hits,
    stats.Progression.cache_misses )

let dls_cases =
  [ slow_case "4 domains intern/progress the same formulas independently"
      (fun () ->
        let baseline = universe_probe () in
        let nodes_before = Interned.node_count () in
        let domains =
          List.init 4 (fun _ -> Domain.spawn (fun () -> universe_probe ()))
        in
        let results = List.map Domain.join domains in
        List.iteri
          (fun i r ->
            Alcotest.(check bool)
              (Printf.sprintf "domain %d matches the single-domain run" i)
              true (r = baseline))
          results;
        (* Peer domains never touched this domain's universe. *)
        Alcotest.(check int) "caller universe untouched" nodes_before
          (Interned.node_count ()));
    case "reset_universe starts a fresh interning universe" (fun () ->
      Tabv_checker.Progression.reset_universe ();
      let n0 = Interned.node_count () in
      ignore (Interned.intern (Parser.formula_only "always(a -> next(b))"));
      Alcotest.(check bool) "interning grows the universe" true
        (Interned.node_count () > n0);
      Tabv_checker.Progression.reset_universe ();
      Alcotest.(check int) "fresh universe after reset" n0
        (Interned.node_count ())) ]

(* --- matrix expansion -------------------------------------------------- *)

let job_label j =
  Printf.sprintf "%s/%s/s%d" (C.duv_name j.C.duv) (C.level_name j.C.level)
    j.C.seed

let matrix_cases =
  [ case "expansion is DUV-major, then level, then seed" (fun () ->
      let jobs =
        C.expand_matrix ~duvs:[ C.Des56; C.Colorconv ]
          ~levels:[ C.Rtl; C.Tlm_ca ] ~seeds:[ 1; 2 ] ~ops:10 ()
      in
      Alcotest.(check (list string)) "order"
        [ "des56/rtl/s1"; "des56/rtl/s2"; "des56/tlm-ca/s1"; "des56/tlm-ca/s2";
          "colorconv/rtl/s1"; "colorconv/rtl/s2"; "colorconv/tlm-ca/s1";
          "colorconv/tlm-ca/s2" ]
        (List.map job_label jobs));
    case "tlm-lt is kept for DES56 and skipped elsewhere" (fun () ->
      let jobs =
        C.expand_matrix ~duvs:[ C.Des56; C.Colorconv; C.Memctrl ]
          ~levels:[ C.Tlm_lt ] ~seeds:[ 1 ] ~ops:10 ()
      in
      Alcotest.(check (list string)) "only des56" [ "des56/tlm-lt/s1" ]
        (List.map job_label jobs));
    case "validate rejects what the testbenches cannot run" (fun () ->
      let bad = C.job ~duv:C.Memctrl ~level:C.Tlm_lt ~seed:1 ~ops:10 () in
      (match C.validate bad with
       | Error _ -> ()
       | Ok () -> Alcotest.fail "memctrl/tlm-lt accepted");
      (match C.validate (C.job ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:0 ()) with
       | Error _ -> ()
       | Ok () -> Alcotest.fail "ops=0 accepted");
      match
        C.run [ bad ]
      with
      | _ -> Alcotest.fail "run accepted an invalid job"
      | exception Invalid_argument _ -> ());
    case "name round-trips" (fun () ->
      List.iter
        (fun duv ->
          Alcotest.(check bool) (C.duv_name duv) true
            (C.duv_of_name (C.duv_name duv) = Some duv))
        [ C.Des56; C.Colorconv; C.Memctrl ];
      List.iter
        (fun level ->
          Alcotest.(check bool) (C.level_name level) true
            (C.level_of_name (C.level_name level) = Some level))
        [ C.Rtl; C.Tlm_ca; C.Tlm_at; C.Tlm_lt ];
      List.iter
        (fun sel ->
          Alcotest.(check bool) (C.selection_name sel) true
            (C.selection_of_name (C.selection_name sel) = Some sel))
        [ C.All; C.No_checkers; C.Take 5 ]) ]

(* --- manifests --------------------------------------------------------- *)

let manifest_cases =
  [ case "explicit jobs and a matrix compose" (fun () ->
      let doc =
        {|{ "retries": 2,
            "jobs": [ { "duv": "memctrl", "level": "tlm-at", "seed": 9,
                        "ops": 25, "props": 3 } ],
            "matrix": { "duvs": ["des56"], "levels": ["rtl", "tlm-lt"],
                        "seeds": [1], "ops": 10, "props": "none" } }|}
      in
      match C.manifest_of_string doc with
      | Error msg -> Alcotest.fail msg
      | Ok m ->
        Alcotest.(check (option int)) "retries" (Some 2) m.C.manifest_retries;
        Alcotest.(check (list string)) "jobs"
          [ "memctrl/tlm-at/s9"; "des56/rtl/s1"; "des56/tlm-lt/s1" ]
          (List.map job_label m.C.manifest_jobs);
        let explicit = List.hd m.C.manifest_jobs in
        Alcotest.(check bool) "props take 3" true
          (explicit.C.selection = C.Take 3);
        Alcotest.(check bool) "matrix props none" true
          ((List.nth m.C.manifest_jobs 1).C.selection = C.No_checkers));
    case "unknown keys are rejected" (fun () ->
      match
        C.manifest_of_string
          {|{ "jobs": [ { "duv": "des56", "level": "rtl", "seed": 1,
                          "ops": 5, "wat": true } ] }|}
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown job key accepted");
    case "empty manifests and parse errors are reported" (fun () ->
      (match C.manifest_of_string "{}" with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "empty manifest accepted");
      match C.manifest_of_string "{ not json" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed JSON accepted") ]

(* --- JSON parser (Report_json.of_string) ------------------------------- *)

let json_parser_cases =
  [ case "of_string inverts to_string" (fun () ->
      let doc =
        J.Assoc
          [ ("s", J.String "a\"b\\c\n\t\xe2\x82\xac");
            ("i", J.Int (-42));
            ("f", J.Float 1.5);
            ("l", J.List [ J.Bool true; J.Null; J.Int 0 ]);
            ("o", J.Assoc [ ("nested", J.List []) ]) ]
      in
      Alcotest.(check string) "round trip" (J.to_string doc)
        (J.to_string (J.of_string (J.to_string doc))));
    case "numbers parse as Int without fraction/exponent" (fun () ->
      Alcotest.(check bool) "int" true (J.of_string "17" = J.Int 17);
      Alcotest.(check bool) "float" true (J.of_string "1.25" = J.Float 1.25);
      Alcotest.(check bool) "exponent" true (J.of_string "1e2" = J.Float 100.));
    case "unicode escapes decode to UTF-8" (fun () ->
      Alcotest.(check bool) "euro sign" true
        (J.of_string {|"€"|} = J.String "\xe2\x82\xac"));
    case "malformed documents raise Parse_error with a position" (fun () ->
      List.iter
        (fun doc ->
          match J.of_string doc with
          | _ -> Alcotest.failf "accepted %S" doc
          | exception J.Parse_error { line; col; _ } ->
            Alcotest.(check bool) "position" true (line >= 1 && col >= 1))
        [ "{"; "[1,]"; "\"unterminated"; "{\"a\":1} trailing"; "nul" ]);
    case "member reads object fields" (fun () ->
      let doc = J.of_string {|{ "a": 1, "b": [2] }|} in
      Alcotest.(check bool) "a" true (J.member "a" doc = Some (J.Int 1));
      Alcotest.(check bool) "missing" true (J.member "z" doc = None);
      Alcotest.(check bool) "non-object" true (J.member "a" (J.Int 3) = None));
    case "\\uXXXX escapes cover all UTF-8 widths" (fun () ->
      List.iter
        (fun (doc, expected) ->
          match J.of_string doc with
          | J.String s -> Alcotest.(check string) doc expected s
          | _ -> Alcotest.failf "%s: not a string" doc)
        [ ({|"\u0041"|}, "A");  (* 1 byte *)
          ({|"\u00e9"|}, "\xc3\xa9");  (* 2 bytes: U+00E9 *)
          ({|"\u20AC"|}, "\xe2\x82\xac");  (* 3 bytes, upper hex *)
          ({|"\u0000"|}, "\x00");  (* NUL decodes, not truncates *)
          ({|"\ufffd"|}, "\xef\xbf\xbd") (* U+FFFD *) ]);
    case "surrogate pairs decode to one 4-byte scalar" (fun () ->
      (* U+1F600 GRINNING FACE, encoded the only way JSON allows. *)
      Alcotest.(check bool) "grinning face" true
        (J.of_string {|"\ud83d\ude00"|} = J.String "\xf0\x9f\x98\x80");
      (* round trip: the emitter escapes control bytes only, so the
         4-byte sequence survives to_string verbatim *)
      let doc = J.of_string {|"\ud83d\ude00"|} in
      Alcotest.(check bool) "re-parse" true (J.of_string (J.to_string doc) = doc));
    case "unpaired surrogates are rejected" (fun () ->
      List.iter
        (fun doc ->
          match J.of_string doc with
          | _ -> Alcotest.failf "accepted %s" doc
          | exception J.Parse_error _ -> ())
        [ {|"\ud83d"|};  (* lone high *)
          {|"\ud83dx"|};  (* high + ordinary char *)
          {|"\ud83dA"|};  (* high + non-surrogate escape *)
          {|"\ude00"|};  (* lone low *)
          {|"\u12g4"|} (* bad hex digit *) ]) ]

(* A small but non-trivial matrix shared by the merging, journal and
   executor suites. *)
let small_matrix =
  C.expand_matrix ~duvs:[ C.Des56; C.Colorconv ] ~levels:[ C.Rtl; C.Tlm_ca ]
    ~seeds:[ 1 ] ~ops:8 ()

(* --- wire framing ------------------------------------------------------ *)

let wire_cases =
  [ case "frames are length-prefixed with a fixed 9-byte header" (fun () ->
      let frame = Wire.encode_frame "hello" in
      Alcotest.(check string) "encoding" "00000005\nhello" frame;
      Alcotest.(check (option int)) "header decodes" (Some 5)
        (Wire.decode_header (String.sub frame 0 Wire.header_length));
      Alcotest.(check (option int)) "garbage header" None
        (Wire.decode_header "0x5\nhelloo");
      (* underscore-tolerant int_of_string must not leak through *)
      Alcotest.(check (option int)) "underscores rejected" None
        (Wire.decode_header "0000_005\n"));
    case "a stream fed byte by byte pops whole frames" (fun () ->
      let s = Wire.stream () in
      let bytes = Wire.encode_frame "first" ^ Wire.encode_frame "" in
      String.iter (fun c -> Wire.feed s (String.make 1 c)) bytes;
      Alcotest.(check (option string)) "first" (Some "first") (Wire.pop s);
      Alcotest.(check (option string)) "empty frame" (Some "") (Wire.pop s);
      Alcotest.(check (option string)) "drained" None (Wire.pop s);
      Alcotest.(check int) "no residue" 0 (Wire.stream_length s));
    case "a corrupt header raises Protocol_error" (fun () ->
      let s = Wire.stream () in
      Wire.feed s "not-hex!!\nwhatever";
      match Wire.pop s with
      | _ -> Alcotest.fail "corrupt header accepted"
      | exception Wire.Protocol_error _ -> ()) ]

(* --- execution payloads ------------------------------------------------ *)

let payload_cases =
  [ case "job specs round-trip through JSON, chaos included" (fun () ->
      List.iter
        (fun job ->
          match C.job_spec_of_json (J.of_string (J.to_string (C.job_spec_json job))) with
          | Ok back -> Alcotest.(check bool) "identical" true (back = job)
          | Error e -> Alcotest.fail e)
        [ C.job ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:5 ();
          C.job ~selection:(C.Take 2) ~chaos:3 ~duv:C.Memctrl ~level:C.Tlm_at
            ~seed:7 ~ops:12 ();
          C.job ~chaos:1 ~chaos_kind:(C.Chaos_hard Tabv_fault.Fault.Abort)
            ~duv:C.Colorconv ~level:C.Tlm_ca ~seed:2 ~ops:6 ();
          C.job ~chaos:2 ~chaos_kind:(C.Chaos_hard Tabv_fault.Fault.Busy_loop)
            ~selection:C.No_checkers ~duv:C.Des56 ~level:C.Tlm_lt ~seed:3
            ~ops:4 () ]);
    slow_case "exec payloads survive the wire byte-for-byte" (fun () ->
      let job = C.job ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:5 () in
      let payload = C.exec_job ~attempt:1 ~metrics_enabled:true job in
      let emitted = J.to_string (C.payload_json payload) in
      match C.payload_of_json (J.of_string emitted) with
      | Error e -> Alcotest.fail e
      | Ok back ->
        Alcotest.(check string) "re-emission identical" emitted
          (J.to_string (C.payload_json back)));
    slow_case "qualify qruns survive the wire byte-for-byte" (fun () ->
      let qrun =
        Qualify.exec_index ~duv:C.Colorconv ~levels:[ C.Rtl ] ~seed:1 ~ops:5 0
      in
      let emitted = J.to_string (Qualify.qrun_json qrun) in
      match Qualify.qrun_of_json (J.of_string emitted) with
      | Error e -> Alcotest.fail e
      | Ok back ->
        Alcotest.(check string) "re-emission identical" emitted
          (J.to_string (Qualify.qrun_json back))) ]

(* --- write-ahead journal ----------------------------------------------- *)

let with_temp_journal f =
  let path = Filename.temp_file "tabv_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let journal_open ~path ~kind ~fingerprint ~resume =
  match Journal.open_ ~path ~kind ~fingerprint ~resume () with
  | Ok j -> j
  | Error e -> Alcotest.fail e

let journal_cases =
  [ case "appended records replay sorted by id on resume" (fun () ->
      with_temp_journal (fun path ->
        let j = journal_open ~path ~kind:"t" ~fingerprint:"fp" ~resume:false in
        Journal.append j ~id:2 (J.String "two");
        Journal.append j ~id:0 (J.String "zero");
        Journal.close j;
        let j = journal_open ~path ~kind:"t" ~fingerprint:"fp" ~resume:true in
        Alcotest.(check bool) "sorted replay" true
          (Journal.replayed j = [ (0, J.String "zero"); (2, J.String "two") ]);
        Alcotest.(check int) "records" 2 (Journal.records j);
        Journal.append j ~id:1 (J.String "one");
        Journal.close j;
        let j = journal_open ~path ~kind:"t" ~fingerprint:"fp" ~resume:true in
        Alcotest.(check int) "records after second resume" 3 (Journal.records j);
        Journal.close j));
    case "resume refuses a different campaign" (fun () ->
      with_temp_journal (fun path ->
        Journal.close
          (journal_open ~path ~kind:"t" ~fingerprint:"fp" ~resume:false);
        (match Journal.open_ ~path ~kind:"t" ~fingerprint:"other" ~resume:true () with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "fingerprint mismatch accepted");
        match Journal.open_ ~path ~kind:"u" ~fingerprint:"fp" ~resume:true () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "kind mismatch accepted"));
    case "a torn trailing line is dropped, not fatal" (fun () ->
      with_temp_journal (fun path ->
        let j = journal_open ~path ~kind:"t" ~fingerprint:"fp" ~resume:false in
        Journal.append j ~id:0 (J.Int 7);
        Journal.close j;
        (* Simulate a crash mid-append: half a record, no newline. *)
        let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
        output_string oc {|{"id":1,"rec|};
        close_out oc;
        let j = journal_open ~path ~kind:"t" ~fingerprint:"fp" ~resume:true in
        Alcotest.(check bool) "intact record survives" true
          (Journal.replayed j = [ (0, J.Int 7) ]);
        (* The torn bytes were truncated away: appending now yields a
           well-formed journal again. *)
        Journal.append j ~id:1 (J.Int 8);
        Journal.close j;
        let j = journal_open ~path ~kind:"t" ~fingerprint:"fp" ~resume:true in
        Alcotest.(check bool) "clean after truncate + append" true
          (Journal.replayed j = [ (0, J.Int 7); (1, J.Int 8) ]);
        Journal.close j));
    slow_case "campaign resume replays journaled jobs byte-identically" (fun () ->
      with_temp_journal (fun path ->
        let jobs = small_matrix in
        let fingerprint = C.fingerprint ~retries:1 jobs in
        let open_j resume =
          journal_open ~path ~kind:C.journal_kind ~fingerprint ~resume
        in
        let run journal = C.run ~workers:2 ~journal jobs in
        let j = open_j false in
        let fresh = run j in
        Journal.close j;
        let j = open_j true in
        let resumed = run j in
        Journal.close j;
        Alcotest.(check int) "all jobs replayed" (List.length jobs)
          resumed.C.replayed;
        Alcotest.(check int) "fresh run replayed nothing" 0 fresh.C.replayed;
        Alcotest.(check string) "byte-identical report"
          (J.to_string (C.report_json fresh))
          (J.to_string (C.report_json resumed))));
    slow_case "an interrupted campaign leaves a resumable journal" (fun () ->
      with_temp_journal (fun path ->
        let jobs = small_matrix in
        let fingerprint = C.fingerprint ~retries:1 jobs in
        let open_j resume =
          journal_open ~path ~kind:C.journal_kind ~fingerprint ~resume
        in
        (* One worker + a poll counter: the in-domain pool checks
           [interrupted] once before claiming each job, so exactly two
           jobs complete before the stop. *)
        let polls = ref 0 in
        let j = open_j false in
        let partial =
          C.run ~workers:1 ~journal:j
            ~interrupted:(fun () -> incr polls; !polls > 2)
            jobs
        in
        Journal.close j;
        Alcotest.(check int) "two jobs pending" 2 partial.C.pending;
        Alcotest.(check bool) "interrupted runs are not green" false
          (C.all_green partial);
        Alcotest.(check int) "two records journaled" 2
          (List.length partial.C.results);
        let j = open_j true in
        let resumed = C.run ~workers:2 ~journal:j jobs in
        Journal.close j;
        Alcotest.(check int) "completed jobs replayed" 2 resumed.C.replayed;
        Alcotest.(check int) "nothing pending" 0 resumed.C.pending;
        Alcotest.(check string) "resumed report = uninterrupted report"
          (J.to_string (C.report_json (C.run ~workers:2 jobs)))
          (J.to_string (C.report_json resumed)))) ]

(* --- subprocess executor ----------------------------------------------- *)

(* The test binary cannot serve as its own worker: assembling the
   qcheck suites prints a seed banner on stdout at module init, before
   main.ml's [_worker] hook can run, and that banner would corrupt the
   frame protocol.  The executor tests therefore run their workers out
   of the real tabv binary, located relative to this executable
   (dune builds both under _build/default; the test stanza depends on
   it). *)
let tabv_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "tabv.exe"))

let subprocess ?job_timeout_s () =
  Executor.config ?job_timeout_s ~worker_argv:[| tabv_exe; "_worker" |]
    Executor.Subprocess

let backoff_cases =
  [ case "retry backoff is deterministic, jittered and capped" (fun () ->
      let base_s = 0.25 in
      let d ~seed ~task attempt =
        Executor.backoff_s ~seed ~task ~base_s ~attempt
      in
      (* Pure function of (seed, task, attempt). *)
      Alcotest.(check (float 0.)) "replayable"
        (d ~seed:3 ~task:7 4) (d ~seed:3 ~task:7 4);
      Alcotest.(check (float 0.)) "first attempt is the base"
        base_s (d ~seed:3 ~task:7 1);
      (* Decorrelation: two clients (distinct seeds) rejected at the
         same instant must not re-stampede in lockstep. *)
      Alcotest.(check bool) "distinct seeds decorrelate" true
        (d ~seed:1 ~task:0 3 <> d ~seed:2 ~task:0 3);
      (* Every delay stays inside [base, 32*base]. *)
      for attempt = 1 to 12 do
        let delay = d ~seed:11 ~task:2 attempt in
        Alcotest.(check bool)
          (Printf.sprintf "attempt %d in [base, 32*base]" attempt)
          true
          (delay >= base_s && delay <= 32. *. base_s)
      done;
      Alcotest.(check (float 0.)) "degenerate base yields no delay" 0.
        (Executor.backoff_s ~seed:1 ~task:1 ~base_s:0. ~attempt:3)) ]

let executor_cases =
  [ slow_case "subprocess reports are byte-identical to in-domain" (fun () ->
      let report exec =
        J.to_string (C.report_json (C.run ~workers:2 ~exec small_matrix))
      in
      Alcotest.(check string) "executor-independent"
        (report (Executor.config Executor.In_domain))
        (report (subprocess ())));
    slow_case "chaos crashes read identically across executors" (fun () ->
      (* One job that crashes on attempt 1 and completes on the retry,
         one that crashes forever: attempts, outcomes and the recorded
         error string must not betray where the job ran. *)
      let jobs =
        [ C.job ~chaos:1 ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:5 ();
          C.job ~chaos:99 ~duv:C.Colorconv ~level:C.Rtl ~seed:1 ~ops:5 () ]
      in
      let report exec =
        J.to_string (C.report_json (C.run ~workers:2 ~retries:1 ~exec jobs))
      in
      Alcotest.(check string) "executor-independent"
        (report (Executor.config Executor.In_domain))
        (report (subprocess ())));
    slow_case "an aborting job is contained and classified as killed" (fun () ->
      let jobs =
        [ C.job ~chaos:99 ~chaos_kind:(C.Chaos_hard Tabv_fault.Fault.Abort)
            ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:5 ();
          C.job ~duv:C.Colorconv ~level:C.Rtl ~seed:1 ~ops:5 () ]
      in
      let s = C.run ~workers:2 ~retries:1 ~exec:(subprocess ()) jobs in
      Alcotest.(check int) "killed" 1 s.C.killed;
      Alcotest.(check int) "completed" 1 s.C.completed;
      (match (List.hd s.C.results).C.outcome with
       | C.Killed { signal } ->
         Alcotest.(check int) "SIGABRT" 6 signal
       | _ -> Alcotest.fail "expected Killed");
      Alcotest.(check int) "attempts = retries + 1" 2
        (List.hd s.C.results).C.attempts;
      Alcotest.(check bool) "survivor unharmed" true
        ((List.nth s.C.results 1).C.outcome = C.Completed));
    slow_case "a busy-looping job trips the wall-clock watchdog" (fun () ->
      let jobs =
        [ C.job ~chaos:99 ~chaos_kind:(C.Chaos_hard Tabv_fault.Fault.Busy_loop)
            ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:5 ();
          C.job ~duv:C.Des56 ~level:C.Rtl ~seed:2 ~ops:5 () ]
      in
      let s =
        C.run ~workers:2 ~retries:0 ~exec:(subprocess ~job_timeout_s:0.5 ())
          jobs
      in
      Alcotest.(check int) "timed out" 1 s.C.timed_out;
      Alcotest.(check bool) "outcome" true
        ((List.hd s.C.results).C.outcome = C.Timed_out);
      Alcotest.(check bool) "survivor unharmed" true
        ((List.nth s.C.results 1).C.outcome = C.Completed));
    slow_case "qualify reports are executor-independent" (fun () ->
      let report exec =
        J.to_string
          (Qualify.report_json
             (Qualify.run ~workers:2 ~exec ~duv:C.Colorconv ~levels:[ C.Rtl ]
                ~seed:1 ~ops:6 ()))
      in
      Alcotest.(check string) "executor-independent"
        (report (Executor.config Executor.In_domain))
        (report (subprocess ())));
    slow_case "qualify journals resume byte-identically" (fun () ->
      with_temp_journal (fun path ->
        let duv = C.Colorconv and levels = [ C.Rtl ] and seed = 1 and ops = 6 in
        let fingerprint = Qualify.fingerprint ~duv ~levels ~seed ~ops in
        let open_j resume =
          journal_open ~path ~kind:Qualify.journal_kind ~fingerprint ~resume
        in
        let run journal =
          Qualify.run ~workers:2 ~journal ~duv ~levels ~seed ~ops ()
        in
        let j = open_j false in
        let fresh = run j in
        Journal.close j;
        let j = open_j true in
        let resumed = run j in
        Journal.close j;
        Alcotest.(check string) "byte-identical report"
          (J.to_string (Qualify.report_json fresh))
          (J.to_string (Qualify.report_json resumed))));
    slow_case "qualify raises Interrupted instead of a partial matrix" (fun () ->
      let polls = ref 0 in
      match
        Qualify.run ~workers:1 ~interrupted:(fun () -> incr polls; !polls > 2)
          ~duv:C.Colorconv ~levels:[ C.Rtl ] ~seed:1 ~ops:6 ()
      with
      | _ -> Alcotest.fail "expected Interrupted"
      | exception Qualify.Interrupted -> ()) ]

(* --- running ----------------------------------------------------------- *)

let run_cases =
  [ slow_case "reports are byte-identical for 1 and 2 workers" (fun () ->
      let report workers =
        J.to_string (C.report_json (C.run ~workers small_matrix))
      in
      Alcotest.(check string) "deterministic" (report 1) (report 2));
    slow_case "summary counts and per-job results line up" (fun () ->
      let s = C.run ~workers:2 small_matrix in
      Alcotest.(check int) "completed" (List.length small_matrix) s.C.completed;
      Alcotest.(check int) "crashed" 0 s.C.crashed;
      Alcotest.(check bool) "green" true (C.all_green s);
      Alcotest.(check (list int)) "ascending job ids"
        (List.init (List.length small_matrix) Fun.id)
        (List.map (fun r -> r.C.job_id) s.C.results);
      List.iter
        (fun r ->
          Alcotest.(check int) (job_label r.C.job ^ " attempts") 1 r.C.attempts;
          Alcotest.(check bool) (job_label r.C.job ^ " completed") true
            (r.C.outcome = C.Completed);
          Alcotest.(check int)
            (job_label r.C.job ^ " completed ops")
            r.C.job.C.ops r.C.completed_ops)
        s.C.results;
      Alcotest.(check bool) "merged metrics non-empty" true
        (s.C.merged_metrics <> []));
    slow_case "a crashing job retries and then completes" (fun () ->
      let jobs =
        [ C.job ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:5 ();
          C.job ~chaos:1 ~duv:C.Des56 ~level:C.Tlm_ca ~seed:1 ~ops:5 () ]
      in
      let s = C.run ~workers:2 ~retries:1 jobs in
      Alcotest.(check int) "completed" 2 s.C.completed;
      Alcotest.(check int) "crashed" 0 s.C.crashed;
      let retried = List.nth s.C.results 1 in
      Alcotest.(check int) "attempts" 2 retried.C.attempts;
      Alcotest.(check bool) "green" true (C.all_green s));
    slow_case "a persistently crashing job is isolated" (fun () ->
      let jobs =
        [ C.job ~chaos:99 ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:5 ();
          C.job ~duv:C.Colorconv ~level:C.Rtl ~seed:1 ~ops:5 () ]
      in
      let s = C.run ~workers:2 ~retries:1 jobs in
      Alcotest.(check int) "completed" 1 s.C.completed;
      Alcotest.(check int) "crashed" 1 s.C.crashed;
      Alcotest.(check bool) "not green" false (C.all_green s);
      let crashed = List.hd s.C.results in
      Alcotest.(check int) "attempts = retries + 1" 2 crashed.C.attempts;
      (match crashed.C.outcome with
       | C.Crashed { error } ->
         Alcotest.(check bool) "error recorded" true (String.length error > 0)
       | C.Completed | C.Killed _ | C.Timed_out ->
         Alcotest.fail "expected a crash");
      let survivor = List.nth s.C.results 1 in
      Alcotest.(check bool) "other job completed" true
        (survivor.C.outcome = C.Completed));
    slow_case "crashed jobs are stamped in the report JSON" (fun () ->
      let jobs = [ C.job ~chaos:99 ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:5 () ] in
      let s = C.run ~retries:0 jobs in
      let doc = J.of_string (J.to_string (C.report_json s)) in
      match J.member "jobs" doc with
      | Some (J.List [ job ]) ->
        Alcotest.(check bool) "outcome" true
          (J.member "outcome" job = Some (J.String "crashed"));
        Alcotest.(check bool) "error present" true
          (match J.member "error" job with
           | Some (J.String _) -> true
           | _ -> false)
      | _ -> Alcotest.fail "report jobs malformed");
    slow_case "property selection changes the attached checker set" (fun () ->
      let run_sel selection =
        let jobs = [ C.job ~selection ~duv:C.Des56 ~level:C.Rtl ~seed:1 ~ops:5 () ] in
        List.length (List.hd (C.run jobs).C.results).C.checker_stats
      in
      Alcotest.(check int) "none" 0 (run_sel C.No_checkers);
      Alcotest.(check int) "take 1" 1 (run_sel (C.Take 1));
      Alcotest.(check bool) "all" true (run_sel C.All > 1)) ]

let suite =
  ( "campaign",
    dls_cases @ matrix_cases @ manifest_cases @ json_parser_cases @ wire_cases
    @ payload_cases @ journal_cases @ backoff_cases @ run_cases
    @ executor_cases )
