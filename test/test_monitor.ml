open Tabv_psl
open Tabv_checker

(* Unit tests for the Monitor instance manager (Sec. IV wrapper
   behaviour: activation, evaluation, reset/reuse, gating). *)

let case name f = Alcotest.test_case name `Quick f

let lookup_of bindings name = List.assoc_opt name bindings

let env ~a ~b = lookup_of [ ("a", Expr.VBool a); ("b", Expr.VBool b) ]

let prop source = Parser.property_exn ~name:"m" source

let step monitor time e = Monitor.step monitor ~time e

let activation_cases =
  [ case "always spawns an instance per evaluation point" (fun () ->
      let monitor = Monitor.create (prop "always(a || next[3](b))") in
      step monitor 0 (env ~a:false ~b:false);
      step monitor 10 (env ~a:false ~b:false);
      step monitor 20 (env ~a:false ~b:false);
      Alcotest.(check int) "three live" 3 (Monitor.live_instances monitor);
      Alcotest.(check int) "peak" 3 (Monitor.peak_instances monitor));
    case "trivially-true instances are not registered (Sec. IV point 4)" (fun () ->
      let monitor = Monitor.create (prop "always(a || next[3](b))") in
      step monitor 0 (env ~a:true ~b:false);
      step monitor 10 (env ~a:true ~b:false);
      Alcotest.(check int) "none live" 0 (Monitor.live_instances monitor);
      Alcotest.(check int) "counted as passes" 2 (Monitor.passes monitor));
    case "instances retire on completion and slots are reused" (fun () ->
      let monitor = Monitor.create (prop "always(a || next(b))") in
      step monitor 0 (env ~a:false ~b:false);
      Alcotest.(check int) "one live" 1 (Monitor.live_instances monitor);
      step monitor 10 (env ~a:false ~b:true);
      (* The first instance resolved true; the second is newly live. *)
      Alcotest.(check int) "one live again" 1 (Monitor.live_instances monitor);
      Alcotest.(check int) "peak stays 1" 1 (Monitor.peak_instances monitor);
      Alcotest.(check int) "one pass" 1 (Monitor.passes monitor));
    case "non-always property activates a single instance" (fun () ->
      let monitor = Monitor.create (prop "eventually(b)") in
      step monitor 0 (env ~a:true ~b:false);
      step monitor 10 (env ~a:true ~b:false);
      Alcotest.(check int) "one activation" 1 (Monitor.activations monitor);
      step monitor 20 (env ~a:true ~b:true);
      Alcotest.(check int) "passed" 1 (Monitor.passes monitor);
      Alcotest.(check int) "none pending" 0 (Monitor.pending monitor)) ]

let failure_cases =
  [ case "failure records activation and failure times" (fun () ->
      let monitor = Monitor.create (prop "always(a || next(b))") in
      step monitor 0 (env ~a:false ~b:false);
      step monitor 10 (env ~a:true ~b:false);
      (match Monitor.failures monitor with
       | [ f ] ->
         Alcotest.(check int) "activation" 0 f.Monitor.activation_time;
         Alcotest.(check int) "failure" 10 f.Monitor.failure_time;
         Alcotest.(check string) "name" "m" f.Monitor.property_name
       | other -> Alcotest.failf "expected one failure, got %d" (List.length other)));
    case "immediately-false activation is a failure" (fun () ->
      let monitor = Monitor.create (prop "always(a)") in
      step monitor 0 (env ~a:false ~b:false);
      Alcotest.(check int) "one failure" 1 (List.length (Monitor.failures monitor)));
    case "failures accumulate in order" (fun () ->
      let monitor = Monitor.create (prop "always(a)") in
      step monitor 0 (env ~a:false ~b:false);
      step monitor 10 (env ~a:true ~b:false);
      step monitor 20 (env ~a:false ~b:false);
      Alcotest.(check (list int)) "times" [ 0; 20 ]
        (List.map (fun f -> f.Monitor.failure_time) (Monitor.failures monitor)));
    case "simultaneous failures report in activation order (all engines)" (fun () ->
      (* Three instances activated at 0/10/20 collapse into one
         hash-consed state ('b until c') in the interned engine; when
         it fails at 30 the report must still attribute one failure per
         activation, ascending by activation time — independent of the
         internal instance representation. *)
      let env3 ~a ~b ~c =
        lookup_of
          [ ("a", Expr.VBool a); ("b", Expr.VBool b); ("c", Expr.VBool c) ]
      in
      List.iter
        (fun engine ->
          let monitor =
            Monitor.create ~engine (prop "always(a || (b until c))")
          in
          step monitor 0 (env3 ~a:false ~b:true ~c:false);
          step monitor 10 (env3 ~a:false ~b:true ~c:false);
          step monitor 20 (env3 ~a:false ~b:true ~c:false);
          step monitor 30 (env3 ~a:true ~b:false ~c:false);
          Alcotest.(check (list (pair int int)))
            "(activation, failure) pairs"
            [ (0, 30); (10, 30); (20, 30) ]
            (List.map
               (fun f -> (f.Monitor.activation_time, f.Monitor.failure_time))
               (Monitor.failures monitor)))
        [ `Progression; `Progression_legacy; `Automaton ]) ]

let gating_cases =
  [ case "gated context skips evaluation points entirely" (fun () ->
      let monitor =
        Monitor.create (Parser.property_exn ~name:"g" "always(a) @(clk_pos && b)")
      in
      (* b false: the point is excluded; even a=false must not fail. *)
      step monitor 0 (env ~a:false ~b:false);
      Alcotest.(check int) "no steps" 0 (Monitor.steps monitor);
      Alcotest.(check int) "no failures" 0 (List.length (Monitor.failures monitor));
      step monitor 10 (env ~a:false ~b:true);
      Alcotest.(check int) "one step" 1 (Monitor.steps monitor);
      Alcotest.(check int) "now it fails" 1 (List.length (Monitor.failures monitor)));
    case "gated transaction context behaves the same" (fun () ->
      let monitor =
        Monitor.create (Parser.property_exn ~name:"g" "always(a) @(tb && b)")
      in
      step monitor 0 (env ~a:false ~b:false);
      step monitor 7 (env ~a:true ~b:true);
      Alcotest.(check int) "one step" 1 (Monitor.steps monitor);
      Alcotest.(check int) "no failures" 0 (List.length (Monitor.failures monitor))) ]

let normalisation_cases =
  [ case "implication inputs are normalised internally" (fun () ->
      let monitor = Monitor.create (prop "always(a -> next(b))") in
      step monitor 0 (env ~a:true ~b:false);
      step monitor 10 (env ~a:false ~b:true);
      Alcotest.(check int) "no failures" 0 (List.length (Monitor.failures monitor)));
    case "timed obligations counted as pending at end" (fun () ->
      let monitor = Monitor.create (prop "always(a || nexte[1,170](b)) @tb") in
      step monitor 0 (env ~a:false ~b:false);
      Alcotest.(check int) "pending" 1 (Monitor.pending monitor)) ]

let vacuity_cases =
  [ case "never-fired implication is vacuous" (fun () ->
      let monitor = Monitor.create (prop "always(a -> next(b))") in
      step monitor 0 (env ~a:false ~b:false);
      step monitor 10 (env ~a:false ~b:true);
      Alcotest.(check int) "trivial passes" 2 (Monitor.trivial_passes monitor);
      Alcotest.(check bool) "vacuous" true (Monitor.vacuous monitor));
    case "a fired implication is not vacuous" (fun () ->
      let monitor = Monitor.create (prop "always(a -> next(b))") in
      step monitor 0 (env ~a:true ~b:false);
      step monitor 10 (env ~a:false ~b:true);
      Alcotest.(check bool) "not vacuous" false (Monitor.vacuous monitor));
    case "unevaluated monitor is not reported vacuous" (fun () ->
      let monitor = Monitor.create (prop "always(a)") in
      Alcotest.(check bool) "not vacuous" false (Monitor.vacuous monitor)) ]

let coverage_cases =
  [ case "coverage summary aggregates monitors" (fun () ->
      let good = Monitor.create (prop "always(a)") in
      step good 0 (env ~a:true ~b:false);
      let bad = Monitor.create (prop "always(b)") in
      step bad 0 (env ~a:true ~b:false);
      let vac = Monitor.create (prop "always(a -> next(b))") in
      step vac 0 (env ~a:false ~b:false);
      let summary = Coverage.summarize [ good; bad; vac ] in
      Alcotest.(check int) "properties" 3 summary.Coverage.properties;
      Alcotest.(check int) "failing" 1 summary.Coverage.failing;
      Alcotest.(check int) "vacuous" 1 summary.Coverage.vacuous;
      Alcotest.(check int) "failures" 1 summary.Coverage.total_failures;
      Alcotest.(check bool) "not clean" false (Coverage.clean summary));
    case "a clean run is clean" (fun () ->
      let monitor = Monitor.create (prop "always(a -> next(b))") in
      step monitor 0 (env ~a:true ~b:false);
      step monitor 10 (env ~a:false ~b:true);
      let summary = Coverage.summarize [ monitor ] in
      Alcotest.(check bool) "clean" true (Coverage.clean summary)) ]

let suite =
  ("monitor",
   activation_cases @ failure_cases @ gating_cases @ normalisation_cases
   @ vacuity_cases @ coverage_cases)
