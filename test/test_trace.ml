open Tabv_psl
open Tabv_trace

(* The binary trace format: encode/decode round trips, damaged-file
   refusal, the writer's same-instant last-wins buffer, the offline
   checker runner (including its equivalence with the deprecated
   [Replay.run] shim), parallel re-checking, and the streaming reader's
   bounded memory. *)

let case name f = Alcotest.test_case name `Quick f

let meta =
  { Meta.model = "test-model"; seed = 7; ops = 3; engine = "classic" }

let temp_trace () = Filename.temp_file "tabv_test" ".trace"

let with_temp f =
  let path = temp_trace () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* --- generators for the round-trip property ----------------------- *)

(* A random recording: a dictionary (names + kinds), strictly
   increasing sample times with per-kind random values, and spans over
   a small label set. *)
type recording = {
  rec_samples : (int * (string * Expr.value) list) list;
  rec_spans : (string * int * int) list;
}

let gen_recording =
  let open QCheck.Gen in
  let* n_signals = int_range 1 6 in
  let* kinds = list_repeat n_signals bool in
  let signals =
    List.mapi (fun i is_bool -> (Printf.sprintf "s%d" i, is_bool)) kinds
  in
  let gen_value is_bool =
    if is_bool then map (fun b -> Expr.VBool b) bool
    else
      oneof
        [ map (fun v -> Expr.VInt v) (int_range (-1000) 1000);
          oneofl [ Expr.VInt max_int; Expr.VInt min_int; Expr.VInt 0 ] ]
  in
  let gen_env =
    flatten_l
      (List.map
         (fun (name, is_bool) -> map (fun v -> (name, v)) (gen_value is_bool))
         signals)
  in
  let* n_samples = int_range 0 40 in
  let* t0 = int_range 0 50 in
  let* deltas = list_repeat n_samples (int_range 1 100) in
  let times =
    List.rev
      (snd
         (List.fold_left
            (fun (t, acc) d ->
              let t = t + d in
              (t, t :: acc))
            (t0, []) deltas))
  in
  let* envs = list_repeat n_samples gen_env in
  let* n_spans = int_range 0 10 in
  let* spans =
    list_repeat n_spans
      (let* label = oneofl [ "read"; "write"; "burst" ] in
       let* start = int_range 0 5000 in
       let* duration = int_range 0 500 in
       return (label, start, start + duration))
  in
  return { rec_samples = List.combine times envs; rec_spans = spans }

let arb_recording =
  QCheck.make
    ~print:(fun r ->
      Printf.sprintf "%d samples, %d spans"
        (List.length r.rec_samples)
        (List.length r.rec_spans))
    gen_recording

let write_recording path r =
  Writer.with_file ~path meta (fun w ->
      List.iter (fun (time, env) -> Writer.sample w ~time env) r.rec_samples;
      List.iter
        (fun (label, start_time, end_time) ->
          Writer.span w ~label ~start_time ~end_time)
        r.rec_spans)

(* Samples and spans are independent streams (the pending-sample
   buffer reorders them within an instant), so read them back
   separately. *)
let read_streams path =
  Reader.with_file path (fun reader ->
      Seq.fold_left
        (fun (samples, spans) entry ->
          match entry with
          | Entry.Sample { time; env } -> ((time, env) :: samples, spans)
          | Entry.Span { label; start_time; end_time } ->
            (samples, (label, start_time, end_time) :: spans))
        ([], []) (Reader.to_seq reader)
      |> fun (samples, spans) -> (List.rev samples, List.rev spans))

let roundtrip_cases =
  [ Helpers.qtest ~count:300 "write/read round trip (samples and spans)"
      arb_recording
      (fun r ->
        with_temp (fun path ->
            write_recording path r;
            let samples, spans = read_streams path in
            samples = r.rec_samples && spans = r.rec_spans));
    case "meta survives the header" (fun () ->
      with_temp (fun path ->
          write_recording path { rec_samples = []; rec_spans = [] };
          let got = Reader.with_file path Reader.meta in
          Alcotest.(check bool) "meta equal" true (Meta.equal meta got)));
    case "signal dictionary is recovered in sample order" (fun () ->
      with_temp (fun path ->
          write_recording path
            { rec_samples =
                [ (5, [ ("b", Expr.VBool true); ("a", Expr.VInt 3) ]) ];
              rec_spans = [] };
          Reader.with_file path (fun reader ->
              Seq.iter ignore (Reader.to_seq reader);
              Alcotest.(check (list string))
                "dict order" [ "b"; "a" ] (Reader.signals reader))));
    case "same-instant samples collapse last-wins (as in Trace_rec)" (fun () ->
      with_temp (fun path ->
          Writer.with_file ~path meta (fun w ->
              Writer.sample w ~time:10 [ ("x", Expr.VBool true) ];
              Writer.sample w ~time:10 [ ("x", Expr.VBool false) ];
              Writer.sample w ~time:20 [ ("x", Expr.VBool false) ]);
          let samples, _ = read_streams path in
          Alcotest.(check bool) "last write wins" true
            (samples
             = [ (10, [ ("x", Expr.VBool false) ]);
                 (20, [ ("x", Expr.VBool false) ]) ])));
    case "writer refuses time going backwards" (fun () ->
      with_temp (fun path ->
          let w = Writer.create ~path meta in
          Writer.sample w ~time:10 [ ("x", Expr.VBool true) ];
          (match Writer.sample w ~time:5 [ ("x", Expr.VBool true) ] with
           | () -> Alcotest.fail "accepted a backwards sample"
           | exception Invalid_argument _ -> ());
          Writer.close w));
    case "writer refuses an unstable signal set" (fun () ->
      with_temp (fun path ->
          let w = Writer.create ~path meta in
          Writer.sample w ~time:0 [ ("x", Expr.VBool true) ];
          (match
             Writer.sample w ~time:10
               [ ("x", Expr.VBool true); ("y", Expr.VInt 1) ]
           with
           | () -> Alcotest.fail "accepted extra signals"
           | exception Invalid_argument _ -> ());
          (match Writer.sample w ~time:20 [ ("x", Expr.VInt 1) ] with
           | () -> Alcotest.fail "accepted a kind change"
           | exception Invalid_argument _ -> ());
          Writer.close w)) ]

(* --- damaged files ------------------------------------------------ *)

let read_all path =
  Reader.with_file path (fun reader -> Seq.iter ignore (Reader.to_seq reader))

let refuses path =
  match read_all path with
  | () -> false
  | exception Reader.Format_error _ -> true

let write_bytes path bytes =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes)

let corrupt_cases =
  [ case "refuses a non-trace file" (fun () ->
      with_temp (fun path ->
          write_bytes path "definitely not a trace";
          Alcotest.(check bool) "refused" true (refuses path)));
    case "refuses an unsupported version" (fun () ->
      with_temp (fun path ->
          write_recording path { rec_samples = []; rec_spans = [] };
          let bytes = Bytes.of_string In_channel.(with_open_bin path input_all) in
          Bytes.set bytes 7 '\x63';
          write_bytes path (Bytes.to_string bytes);
          Alcotest.(check bool) "refused" true (refuses path)));
    case "refuses every truncation point" (fun () ->
      with_temp (fun path ->
          write_recording path
            { rec_samples =
                [ (0, [ ("a", Expr.VBool true); ("n", Expr.VInt 42) ]);
                  (10, [ ("a", Expr.VBool false); ("n", Expr.VInt 42) ]);
                  (25, [ ("a", Expr.VBool false); ("n", Expr.VInt (-7)) ]) ];
              rec_spans = [ ("read", 0, 20); ("write", 5, 10) ] };
          let full = In_channel.(with_open_bin path input_all) in
          Alcotest.(check bool) "full file reads" false (refuses path);
          for cut = 0 to String.length full - 1 do
            write_bytes path (String.sub full 0 cut);
            if not (refuses path) then
              Alcotest.failf "accepted a %d-byte truncation" cut
          done));
    case "refuses trailing bytes after the end record" (fun () ->
      with_temp (fun path ->
          write_recording path
            { rec_samples = [ (0, [ ("a", Expr.VBool true) ]) ];
              rec_spans = [] };
          let full = In_channel.(with_open_bin path input_all) in
          write_bytes path (full ^ "\x00");
          Alcotest.(check bool) "refused" true (refuses path)));
    case "refuses a uint varint overflowing into the sign bit" (fun () ->
      let next_of bytes =
        let i = ref 0 in
        fun () ->
          if !i >= String.length bytes then raise End_of_file
          else begin
            let c = bytes.[!i] in
            incr i;
            c
          end
      in
      (* Nine bytes whose payload sets bit 62 — the OCaml int sign bit.
         A well-formed-looking uint field must not silently decode to a
         negative value. *)
      let negative = "\x80\x80\x80\x80\x80\x80\x80\x80\x40" in
      (match Varint.read_uint (next_of negative) with
       | v -> Alcotest.failf "decoded to %d instead of raising" v
       | exception Varint.Corrupt _ -> ());
      (* Ten-byte encodings stay rejected. *)
      let overlong = "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01" in
      (match Varint.read_uint (next_of overlong) with
       | v -> Alcotest.failf "decoded to %d instead of raising" v
       | exception Varint.Corrupt _ -> ());
      (* The zigzag side still spans the full signed range (bit 62 is
         a legitimate zigzag payload bit), and max uint round-trips. *)
      List.iter
        (fun v ->
          let buf = Buffer.create 16 in
          Varint.write_zigzag buf v;
          Alcotest.(check int) "zigzag round trip" v
            (Varint.read_zigzag (next_of (Buffer.contents buf))))
        [ min_int; max_int; -1; 0; 1 ];
      let buf = Buffer.create 16 in
      Varint.write_uint buf max_int;
      Alcotest.(check int) "max uint round trip" max_int
        (Varint.read_uint (next_of (Buffer.contents buf)))) ]

(* --- the offline checker API -------------------------------------- *)

let des56_trace ops_count =
  let ops = Tabv_duv.Workload.des56 ~seed:3 ~count:ops_count () in
  let result = Tabv_duv.Testbench.run_des56_rtl ~record_trace:true ops in
  match result.Tabv_duv.Testbench.trace with
  | Some trace -> trace
  | None -> Alcotest.fail "testbench recorded no trace"

module Monitors_run = Tabv_checker.Offline.Run (Tabv_checker.Offline.Monitors)
module Stats_run = Tabv_checker.Offline.Run (Tabv_checker.Offline.Stats)

let offline_cases =
  [ case "deprecated Replay.run is the Monitors instance" (fun () ->
      let trace = des56_trace 15 in
      let props = Tabv_duv.Des56_props.all in
      (* Reset the progression universe before each run so the
         snapshot cache counters start from the same cold state. *)
      Tabv_checker.Progression.reset_universe ();
      let via_replay =
        List.map
          (fun o ->
            Tabv_checker.Monitor.snapshot o.Tabv_checker.Replay.monitor)
          ((Tabv_checker.Replay.run [@alert "-deprecated"]) props trace)
      in
      Tabv_checker.Progression.reset_universe ();
      let via_offline =
        Tabv_checker.Offline.Monitors.snapshots
          (Monitors_run.over_trace
             (Tabv_checker.Offline.Monitors.config props)
             trace)
      in
      Alcotest.(check bool) "identical snapshots" true
        (via_replay = via_offline));
    case "over_file matches over_trace on a recorded run" (fun () ->
      let trace = des56_trace 12 in
      let props = Tabv_duv.Des56_props.all in
      with_temp (fun path ->
          Writer.with_file ~path meta (fun w ->
              Seq.iter
                (function
                  | Entry.Sample { time; env } -> Writer.sample w ~time env
                  | Entry.Span _ -> ())
                (Entry.of_trace trace));
          let config = Tabv_checker.Offline.Monitors.config props in
          Tabv_checker.Progression.reset_universe ();
          let of_file =
            Tabv_checker.Offline.Monitors.snapshots
              (Monitors_run.over_file config path)
          in
          Tabv_checker.Progression.reset_universe ();
          let of_trace =
            Tabv_checker.Offline.Monitors.snapshots
              (Monitors_run.over_trace config trace)
          in
          Alcotest.(check bool) "identical snapshots" true
            (of_file = of_trace)));
    case "Stats checker counts points, changes and span latencies" (fun () ->
      let open Tabv_checker.Offline.Stats in
      let entries =
        List.to_seq
          [ Entry.Sample
              { time = 0; env = [ ("a", Expr.VBool true); ("n", Expr.VInt 1) ] };
            Entry.Span { label = "read"; start_time = 0; end_time = 20 };
            Entry.Sample
              { time = 10; env = [ ("a", Expr.VBool true); ("n", Expr.VInt 2) ] };
            Entry.Span { label = "write"; start_time = 5; end_time = 10 };
            Entry.Sample
              { time = 30;
                env = [ ("a", Expr.VBool false); ("n", Expr.VInt 2) ] };
            Entry.Span { label = "read"; start_time = 10; end_time = 40 } ]
      in
      let stats = Stats_run.over_seq () entries in
      Alcotest.(check int) "samples" 3 stats.samples;
      Alcotest.(check int) "spans" 3 stats.spans;
      Alcotest.(check int) "first" 0 stats.first_time;
      Alcotest.(check int) "last" 30 stats.last_time;
      Alcotest.(check bool) "changes" true
        (stats.signals
         = [ { signal = "a"; changes = 1 }; { signal = "n"; changes = 1 } ]);
      Alcotest.(check bool) "span labels sorted with latencies" true
        (stats.span_labels
         = [ { label = "read"; count = 2; total_latency = 50; max_latency = 30 };
             { label = "write"; count = 1; total_latency = 5; max_latency = 5 }
           ])) ]

(* --- parallel re-checking ----------------------------------------- *)

let record_des56 path ops_count =
  let ops = Tabv_duv.Workload.des56 ~seed:5 ~count:ops_count () in
  let run_meta =
    { Meta.model = "des56-rtl"; seed = 5; ops = ops_count; engine = "classic" }
  in
  Writer.with_file ~path run_meta (fun w ->
      Tabv_duv.Testbench.run_des56_rtl ~trace_writer:w
        ~properties:Tabv_duv.Des56_props.all ops)

let recheck_cases =
  [ case "recheck report is identical to the live check" (fun () ->
      with_temp (fun path ->
          let live = record_des56 path 15 in
          let run_fields =
            [ ("model", Tabv_core.Report_json.String "des56-rtl");
              ("seed", Tabv_core.Report_json.Int 5);
              ("ops", Tabv_core.Report_json.Int 15) ]
          in
          let live_doc =
            Tabv_core.Report_json.to_string
              (Tabv_core.Report_json.verdict_report_json ~run:run_fields
                 ~properties:live.Tabv_duv.Testbench.checker_stats ())
          in
          let rechecked =
            Tabv_campaign.Recheck.run ~workers:2 ~retries:0 ~trace:path
              Tabv_duv.Des56_props.all
          in
          Alcotest.(check string) "byte-identical" live_doc
            (Tabv_core.Report_json.to_string
               (Tabv_campaign.Recheck.report_json rechecked))));
    case "recheck report is independent of the worker count" (fun () ->
      with_temp (fun path ->
          ignore (record_des56 path 15);
          let report workers =
            Tabv_core.Report_json.to_string
              (Tabv_campaign.Recheck.report_json
                 (Tabv_campaign.Recheck.run ~workers ~retries:0 ~trace:path
                    Tabv_duv.Des56_props.all))
          in
          let one = report 1 in
          Alcotest.(check string) "1 = 3 workers" one (report 3);
          Alcotest.(check string) "1 = 16 workers" one (report 16)));
    case "property sources re-parse to the same property" (fun () ->
      (* Machine-abstracted properties may carry expression-level
         boolean connectives where the parser builds LTL-level ones
         (both print and check identically), so the wire contract is
         pinned on the printed form: name, context and formula text
         must survive the source/parse round trip unchanged. *)
      List.iter
        (fun p ->
          match
            Parser.file (Tabv_campaign.Recheck.property_source p)
          with
          | [ q ] ->
            if not (String.equal (Property.to_string p) (Property.to_string q))
            then
              Alcotest.failf "%s did not round trip" p.Property.name
          | _ -> Alcotest.failf "%s parsed to several" p.Property.name)
        (Tabv_duv.Des56_props.all @ Tabv_duv.Des56_props.tlm_reviewed ()
        @ Tabv_duv.Memctrl_props.all)) ]

(* --- bounded memory ----------------------------------------------- *)

(* A long synthetic trace streamed through the reader must keep live
   words flat: materializing it (the old Replay shape) would retain
   tens of words per sample and trip the bound. *)
let memory_cases =
  [ Alcotest.test_case "streaming a 200k-sample trace is O(signal count)"
      `Slow (fun () ->
        with_temp (fun path ->
            let n = 200_000 in
            Writer.with_file ~path meta (fun w ->
                for i = 0 to n - 1 do
                  Writer.sample w ~time:(i * 10)
                    [ ("a", Expr.VBool (i land 1 = 0));
                      ("n", Expr.VInt (i * 3)) ]
                done);
            Gc.full_major ();
            let baseline = (Gc.stat ()).Gc.live_words in
            let peak = ref baseline in
            let count = ref 0 in
            Reader.with_file path (fun reader ->
                Seq.iter
                  (fun _ ->
                    incr count;
                    if !count mod 50_000 = 0 then begin
                      Gc.full_major ();
                      let live = (Gc.stat ()).Gc.live_words in
                      if live > !peak then peak := live
                    end)
                  (Reader.to_seq reader));
            Alcotest.(check int) "all samples streamed" n !count;
            let growth = !peak - baseline in
            if growth > 1_000_000 then
              Alcotest.failf
                "live words grew by %d (trace is being materialized)" growth))
  ]

let suite =
  ( "trace",
    roundtrip_cases @ corrupt_cases @ offline_cases @ recheck_cases
    @ memory_cases )
