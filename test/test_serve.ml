(* Test suite for the verification service (lib/serve): the bounded
   fair scheduler with its shedding watermark and displacement tiers,
   the worker circuit breaker, the warm LRU result cache, versioned
   framing (including hostile-input fuzz of the incremental decoder),
   journal state-dir helpers — and the daemon end to end over a real
   Unix socket: byte-identity of cold/warm replies against the
   in-process one-shot path, explicit backpressure with scaled retry
   advice, cancellation on client disconnect, per-request deadlines,
   mid-frame silence timeouts, cache invalidation and graceful
   shutdown drain. *)

open Tabv_serve
module J = Tabv_core.Report_json
module Frame = Tabv_core.Frame
module Journal = Tabv_campaign.Journal
module Models = Tabv_duv.Models

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- scheduler -------------------------------------------------------- *)

let sched_cases =
  [ case "round-robin is fair across two competing clients" (fun () ->
        let s = Sched.create ~bound:16 () in
        Sched.add_client s 1;
        Sched.add_client s 2;
        (* Client 1 floods, client 2 sends two; service must alternate
           while both have work. *)
        List.iter
          (fun item -> ignore (Sched.submit s ~client:1 item))
          [ "a1"; "a2"; "a3"; "a4" ];
        List.iter
          (fun item -> ignore (Sched.submit s ~client:2 item))
          [ "b1"; "b2" ];
        let order =
          List.init 6 (fun _ ->
              match Sched.next s with
              | Some (_, item) -> item
              | None -> Alcotest.fail "queue drained early")
        in
        Alcotest.(check (list string))
          "one item per client per revolution"
          [ "a1"; "b1"; "a2"; "b2"; "a3"; "a4" ]
          order;
        Alcotest.(check bool) "drained" true (Sched.next s = None));
    case "submissions over the bound are rejected" (fun () ->
        let s = Sched.create ~bound:2 () in
        Sched.add_client s 1;
        Alcotest.(check bool) "first fits" true
          (Sched.submit s ~client:1 "x" = `Accepted 1);
        Alcotest.(check bool) "second fits" true
          (Sched.submit s ~client:1 "y" = `Accepted 2);
        Alcotest.(check bool) "third rejected" true
          (Sched.submit s ~client:1 "z" = `Rejected);
        (* Draining one slot readmits. *)
        ignore (Sched.next s);
        Alcotest.(check bool) "readmitted after drain" true
          (Sched.submit s ~client:1 "z" = `Accepted 2));
    case "removing a client returns its queued work" (fun () ->
        let s = Sched.create ~bound:8 () in
        Sched.add_client s 1;
        Sched.add_client s 2;
        ignore (Sched.submit s ~client:1 "a");
        ignore (Sched.submit s ~client:2 "b");
        ignore (Sched.submit s ~client:2 "c");
        Alcotest.(check (list string)) "client 2's backlog comes back"
          [ "b"; "c" ]
          (Sched.remove_client s 2);
        Alcotest.(check int) "depth excludes the dropped work" 1
          (Sched.depth s);
        Alcotest.(check bool) "survivor still served" true
          (Sched.next s = Some (1, "a")));
    case "unknown client is a caller bug" (fun () ->
        let s = Sched.create ~bound:2 () in
        Alcotest.check_raises "submit before add_client"
          (Invalid_argument "Sched.submit: unknown client") (fun () ->
            ignore (Sched.submit s ~client:9 "x")));
    case "watermark sheds low-priority work behind better work" (fun () ->
        let s = Sched.create ~bound:4 ~watermark:2 () in
        Sched.add_client s 1;
        Alcotest.(check bool) "first accepted" true
          (Sched.submit ~priority:3 s ~client:1 "hi1" = `Accepted 1);
        Alcotest.(check bool) "second accepted" true
          (Sched.submit ~priority:3 s ~client:1 "hi2" = `Accepted 2);
        (* Depth is at the watermark and the backlog holds strictly
           better work: a low-priority submission is refused early
           even though the bound has room for it. *)
        Alcotest.(check bool) "low work shed at the watermark" true
          (Sched.submit ~priority:1 s ~client:1 "low" = `Rejected);
        Alcotest.(check int) "the refusal is counted" 1 (Sched.shed_count s);
        (* Equal-priority work still gets in below the bound. *)
        Alcotest.(check bool) "peer-priority work still admitted" true
          (Sched.submit ~priority:3 s ~client:1 "hi3" = `Accepted 3));
    case "a full queue displaces the freshest lowest-priority item" (fun () ->
        let s = Sched.create ~bound:2 ~watermark:2 () in
        Sched.add_client s 1;
        ignore (Sched.submit ~priority:0 s ~client:1 "low-old");
        ignore (Sched.submit ~priority:0 s ~client:1 "low-fresh");
        (match Sched.submit ~priority:2 s ~client:1 "hi" with
         | `Displaced (client, victim, depth) ->
           Alcotest.(check int) "victim owner" 1 client;
           Alcotest.(check string) "the freshest low item is evicted"
             "low-fresh" victim;
           Alcotest.(check int) "depth stays at the bound" 2 depth
         | `Accepted _ -> Alcotest.fail "bound not enforced"
         | `Rejected -> Alcotest.fail "better work must displace");
        Alcotest.(check int) "displacement is counted as shed" 1
          (Sched.shed_count s);
        Alcotest.(check bool) "the older low item survives" true
          (Sched.next s = Some (1, "low-old"));
        Alcotest.(check bool) "the displacer is queued" true
          (Sched.next s = Some (1, "hi")));
    case "equal priority never displaces at the bound" (fun () ->
        let s = Sched.create ~bound:1 ~watermark:1 () in
        Sched.add_client s 1;
        ignore (Sched.submit ~priority:1 s ~client:1 "a");
        Alcotest.(check bool) "peer work is rejected, not displaced" true
          (Sched.submit ~priority:1 s ~client:1 "b" = `Rejected)) ]

(* --- worker circuit breaker ------------------------------------------- *)

let breaker_cases =
  let module B = Sched.Breaker in
  [ case "consecutive failures trip the breaker at the threshold" (fun () ->
        let b = B.create ~threshold:2 ~cooldown_s:10. () in
        Alcotest.(check bool) "healthy slot is available" true
          (B.available b ~now:0.);
        B.record_failure b ~now:0.;
        Alcotest.(check bool) "one failure is below the threshold" true
          (B.available b ~now:1.);
        B.record_failure b ~now:1.;
        Alcotest.(check bool) "tripped" true (B.is_open b);
        Alcotest.(check bool) "quarantined during cooldown" false
          (B.available b ~now:5.);
        Alcotest.(check int) "one trip recorded" 1 (B.trips b));
    case "a success resets the consecutive-failure count" (fun () ->
        let b = B.create ~threshold:2 ~cooldown_s:10. () in
        B.record_failure b ~now:0.;
        B.record_success b;
        B.record_failure b ~now:1.;
        Alcotest.(check bool) "non-consecutive failures never trip" false
          (B.is_open b));
    case "cooldown expiry admits exactly one half-open probe" (fun () ->
        let b = B.create ~threshold:1 ~cooldown_s:5. () in
        B.record_failure b ~now:0.;
        Alcotest.(check bool) "open until the cooldown" false
          (B.available b ~now:4.9);
        Alcotest.(check bool) "half-open after the cooldown" true
          (B.available b ~now:5.1);
        B.probe_started b;
        Alcotest.(check bool) "no second probe while one is in flight" false
          (B.available b ~now:5.2);
        B.record_success b;
        Alcotest.(check bool) "probe success re-closes" true
          (B.available b ~now:5.3 && not (B.is_open b)));
    case "a failed probe re-opens with a fresh cooldown" (fun () ->
        let b = B.create ~threshold:1 ~cooldown_s:5. () in
        B.record_failure b ~now:0.;
        Alcotest.(check bool) "probe admitted" true (B.available b ~now:6.);
        B.probe_started b;
        B.record_failure b ~now:6.;
        Alcotest.(check bool) "straight back to quarantine" true (B.is_open b);
        Alcotest.(check bool) "the cooldown restarts from the probe" false
          (B.available b ~now:10.9);
        Alcotest.(check bool) "and expires again" true (B.available b ~now:11.1);
        Alcotest.(check int) "both trips counted" 2 (B.trips b)) ]

(* --- warm cache ------------------------------------------------------- *)

let entry report = { Warm.ok = true; report }

let warm_cases =
  [ case "LRU eviction keeps the recently used entries" (fun () ->
        let w = Warm.create ~bound:2 in
        Warm.add w "a" (entry "ra");
        Warm.add w "b" (entry "rb");
        (* Touch "a" so "b" is the LRU victim when "c" arrives. *)
        ignore (Warm.find w "a");
        Warm.add w "c" (entry "rc");
        Alcotest.(check bool) "a survives" true (Warm.find w "a" <> None);
        Alcotest.(check bool) "b evicted" true (Warm.find w "b" = None);
        Alcotest.(check bool) "c present" true (Warm.find w "c" <> None);
        Alcotest.(check int) "one eviction" 1 (Warm.evictions w));
    case "hit/miss counters and clear" (fun () ->
        let w = Warm.create ~bound:4 in
        Alcotest.(check bool) "miss on empty" true (Warm.find w "k" = None);
        Warm.add w "k" (entry "r");
        (match Warm.find w "k" with
         | Some e -> Alcotest.(check string) "bytes replayed" "r" e.Warm.report
         | None -> Alcotest.fail "expected a hit");
        Alcotest.(check int) "hits" 1 (Warm.hits w);
        Alcotest.(check int) "misses" 1 (Warm.misses w);
        Alcotest.(check int) "clear reports entries" 1 (Warm.clear w);
        Alcotest.(check int) "empty after clear" 0 (Warm.size w));
    case "re-adding a key replaces without eviction" (fun () ->
        let w = Warm.create ~bound:2 in
        Warm.add w "a" (entry "v1");
        Warm.add w "b" (entry "rb");
        Warm.add w "a" (entry "v2");
        Alcotest.(check int) "no eviction" 0 (Warm.evictions w);
        match Warm.find w "a" with
        | Some e -> Alcotest.(check string) "newest value" "v2" e.Warm.report
        | None -> Alcotest.fail "expected a hit") ]

(* --- versioned framing ------------------------------------------------ *)

let frame_cases =
  [ case "version mismatch fails with a named error" (fun () ->
        let s = Frame.stream ~expect_version:2 () in
        Frame.feed s (Frame.encode ~version:1 "{}");
        match Frame.pop s with
        | exception Frame.Protocol_error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "names both versions: %s" msg)
            true
            (contains msg "version mismatch"
             && contains msg "v1" && contains msg "v2")
        | _ -> Alcotest.fail "expected Protocol_error");
    case "matching version round-trips" (fun () ->
        let s = Frame.stream ~expect_version:1 () in
        Frame.feed s (Frame.encode ~version:1 "hello");
        Alcotest.(check bool) "payload back" true (Frame.pop s = Some "hello"));
    case "protocol events round-trip" (fun () ->
        let round event =
          match
            Protocol.event_of_json (Protocol.event_json ~id:7 event)
          with
          | Ok (7, back) -> back = event
          | _ -> false
        in
        Alcotest.(check bool) "rejected carries retry advice" true
          (round (Protocol.Rejected { retry_after_ms = 250 }));
        Alcotest.(check bool) "result carries the exact bytes" true
          (round (Protocol.Result { ok = true; warm = true; report = "{}\n" }));
        Alcotest.(check bool) "accepted carries the position" true
          (round (Protocol.Accepted { position = 3 }))) ]

(* Hostile-input fuzz of the incremental decoder: every truncation
   point, oversized length prefixes, header garbage, and random
   payloads under random chunking.  A {e negative} length prefix is
   impossible by construction — the header is eight hex digits, so the
   decoded length is always in [0, 0xffffffff]; the oversized case is
   the reachable form of that attack and is bounded by [max_frame]. *)
let frame_fuzz_cases =
  let version = 1 in
  [ case "truncation at every byte is a quiet partial frame" (fun () ->
        let frame = Frame.encode ~version "torn mid-flight" in
        for keep = 0 to String.length frame - 1 do
          let s = Frame.stream ~expect_version:version () in
          Frame.feed s (String.sub frame 0 keep);
          (match Frame.pop s with
           | None -> ()
           | Some _ -> Alcotest.failf "popped a frame from %d/%d bytes" keep
                         (String.length frame)
           | exception e ->
             Alcotest.failf "truncation at byte %d raised %s" keep
               (Printexc.to_string e));
          Alcotest.(check int)
            (Printf.sprintf "all %d bytes stay buffered" keep)
            keep (Frame.stream_length s)
        done);
    case "an oversized length prefix fails at header-decode time" (fun () ->
        (* The body never arrives: the lie must surface the moment the
           header is complete, not after buffering 16 MiB. *)
        let s = Frame.stream ~expect_version:version ~max_frame:1024 () in
        Frame.feed s (Printf.sprintf "%02x%08x\n" version 0x00ffffff);
        match Frame.pop s with
        | exception Frame.Protocol_error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "names the bound: %s" msg)
            true (contains msg "1024")
        | _ -> Alcotest.fail "expected Protocol_error");
    case "garbage where the version belongs raises, never stalls" (fun () ->
        List.iter
          (fun junk ->
            let s = Frame.stream ~expect_version:version () in
            Frame.feed s junk;
            match Frame.pop s with
            | exception Frame.Protocol_error _ -> ()
            | _ ->
              Alcotest.failf "junk header %S decoded quietly" junk)
          [ "zz0000000f\n";  (* non-hex version field *)
            "01zzzzzzzz\n";  (* non-hex length field *)
            "01000000050";   (* missing newline terminator *)
            String.make 11 '\xff' ]);
    Helpers.qtest ~count:200 "random payloads under random chunking round-trip"
      QCheck.(pair (small_list (string_of_size (QCheck.Gen.int_bound 40)))
                (int_range 1 7))
      (fun (payloads, chunk) ->
        let wire = String.concat "" (List.map (Frame.encode ~version) payloads) in
        let s = Frame.stream ~expect_version:version () in
        let decoded = ref [] in
        let n = String.length wire in
        let rec drain () =
          match Frame.pop s with
          | Some p -> decoded := p :: !decoded; drain ()
          | None -> ()
        in
        let i = ref 0 in
        while !i < n do
          let len = min chunk (n - !i) in
          Frame.feed s (String.sub wire !i len);
          drain ();
          i := !i + len
        done;
        List.rev !decoded = payloads && Frame.stream_length s = 0) ]

(* --- journal state dir ------------------------------------------------ *)

let journal_cases =
  [ case "state_path is per-kind and per-fingerprint" (fun () ->
        Alcotest.(check string) "composed path"
          (Filename.concat "/tmp/state" "campaign-abc123.journal")
          (Journal.state_path ~dir:"/tmp/state" ~kind:"campaign"
             ~fingerprint:"abc123");
        Alcotest.(check bool) "different fingerprints do not collide" true
          (Journal.state_path ~dir:"d" ~kind:"campaign" ~fingerprint:"a"
           <> Journal.state_path ~dir:"d" ~kind:"campaign" ~fingerprint:"b"));
    case "gc_stale removes only old journals" (fun () ->
        let dir = Filename.temp_file "tabv_serve_gc" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        Fun.protect
          ~finally:(fun () ->
            Array.iter
              (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
              (Sys.readdir dir);
            Unix.rmdir dir)
          (fun () ->
            let touch name =
              let path = Filename.concat dir name in
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc "x");
              path
            in
            let old_j = touch "campaign-old.journal" in
            let fresh_j = touch "campaign-fresh.journal" in
            let bystander = touch "notes.txt" in
            (* Age the first journal artificially. *)
            let past = Unix.gettimeofday () -. 10_000. in
            Unix.utimes old_j past past;
            let removed =
              Journal.gc_stale ~dir ~max_age_s:3600. ()
            in
            Alcotest.(check (list string)) "only the stale journal" [ old_j ]
              removed;
            Alcotest.(check bool) "stale gone" false (Sys.file_exists old_j);
            Alcotest.(check bool) "fresh kept" true (Sys.file_exists fresh_j);
            Alcotest.(check bool) "non-journal kept" true
              (Sys.file_exists bystander)));
    case "gc_stale on a missing dir is a no-op" (fun () ->
        Alcotest.(check (list string)) "nothing removed" []
          (Journal.gc_stale ~dir:"/nonexistent/tabv-serve-state"
             ~max_age_s:1. ())) ]

(* --- request handling ------------------------------------------------- *)

let check_job ?(seed = 5) ?(ops = 15) () =
  Protocol.Check
    { model = Models.Des56_rtl; seed; ops; props = None; engine = None;
      trace_out = None }

let handler_cases =
  [ case "fingerprints are stable and discriminating" (fun () ->
        Alcotest.(check string) "same job, same fingerprint"
          (Handler.fingerprint (check_job ()))
          (Handler.fingerprint (check_job ()));
        Alcotest.(check bool) "seed changes the fingerprint" true
          (Handler.fingerprint (check_job ())
           <> Handler.fingerprint (check_job ~seed:6 ())));
    case "cacheability: pure requests only" (fun () ->
        Alcotest.(check bool) "check is cacheable" true
          (Handler.cacheable (check_job ()));
        Alcotest.(check bool) "record is not (writes a trace)" false
          (Handler.cacheable
             (Protocol.Check
                { model = Models.Des56_rtl; seed = 1; ops = 5; props = None;
                  engine = None; trace_out = Some "/tmp/t.trace" }));
        Alcotest.(check bool) "recheck is not (reads external bytes)" false
          (Handler.cacheable
             (Protocol.Recheck
                { trace = "/tmp/t.trace"; props = None; workers = 1;
                  retries = 1 }));
        Alcotest.(check bool) "journaled campaign is not" false
          (Handler.cacheable
             (Protocol.Campaign
                { manifest = J.Assoc [ ("jobs", J.List []) ]; workers = 1;
                  retries = None; journal = true }))) ]

(* --- the daemon end to end -------------------------------------------- *)

(* The expected one-shot report for [check_job]: fresh universe, same
   model run, same rendering — computed in this process. *)
let expected_check_report () =
  Tabv_checker.Progression.reset_universe ();
  let properties, grid_properties =
    Models.properties_for Models.Des56_rtl None
  in
  let result =
    Models.run Models.Des56_rtl ~seed:5 ~ops:15 ~properties ~grid_properties
  in
  J.to_string (Models.verdict_report Models.Des56_rtl ~seed:5 ~ops:15 result)
  ^ "\n"

(* Boot a daemon on a fresh temp socket, run [f client socket], always
   drain and join the server. *)
let with_server ?(configure = fun c -> c) f =
  let dir = Filename.temp_file "tabv_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove socket with Sys_error _ -> ());
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        (Sys.readdir dir);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () ->
      let config = configure (Server.default_config ~socket ()) in
      let ready = Atomic.make false in
      let server =
        Domain.spawn (fun () ->
            ignore
              (Server.run ~on_ready:(fun () -> Atomic.set ready true) config))
      in
      while not (Atomic.get ready) do
        Unix.sleepf 0.002
      done;
      Fun.protect
        ~finally:(fun () -> Domain.join server)
        (fun () ->
          let client =
            match Client.connect (`Unix socket) with
            | Ok c -> c
            | Error e -> Alcotest.fail e
          in
          Fun.protect
            ~finally:(fun () ->
              (match Client.control client Protocol.Shutdown with
               | Client.Shutting_down | Client.Control_failed _ -> ()
               | _ -> ());
              Client.close client)
            (fun () -> f client socket)))

let report_of = function
  | Client.Result { report; _ } -> report
  | Client.Rejected _ -> Alcotest.fail "unexpected backpressure rejection"
  | Client.Failed msg -> Alcotest.fail msg

let serve_cases =
  [ slow_case "warm replay is byte-identical to the cold run" (fun () ->
        let expected = expected_check_report () in
        with_server (fun client _socket ->
            (match Client.request client (check_job ()) with
             | Client.Result { ok = true; warm = false; report } ->
               Alcotest.(check string) "cold run matches the one-shot path"
                 expected report
             | _ -> Alcotest.fail "expected a cold ok result");
            match Client.request client (check_job ()) with
            | Client.Result { ok = true; warm = true; report } ->
              Alcotest.(check string) "warm replay is the same bytes" expected
                report
            | _ -> Alcotest.fail "expected a warm ok result"));
    slow_case "invalidate drops the warm cache" (fun () ->
        with_server (fun client _socket ->
            ignore (report_of (Client.request client (check_job ())));
            (match Client.control client Protocol.Invalidate with
             | Client.Invalidated 1 -> ()
             | Client.Invalidated n ->
               Alcotest.failf "expected 1 entry invalidated, got %d" n
             | _ -> Alcotest.fail "expected an invalidated reply");
            match Client.request client (check_job ()) with
            | Client.Result { warm; _ } ->
              Alcotest.(check bool) "cold again after invalidate" false warm
            | _ -> Alcotest.fail "expected a result"));
    slow_case "queue-full rejection carries the retry advice" (fun () ->
        with_server
          ~configure:(fun c ->
            { c with Server.workers = 1; queue_bound = 1;
              retry_after_ms = 123 })
          (fun client _socket ->
            (* Three pipelined jobs on one worker with a queue of one:
               the first occupies the worker, the second fills the
               queue, the third must bounce with the configured base
               advice scaled by the actual backlog — the queue is at
               its bound, so the 123ms base is stretched 5x to 615ms.
               Distinct seeds keep the warm cache out of the admission
               path. *)
            Client.send_request client ~id:0
              (Protocol.Job (check_job ~seed:100 ~ops:400 ()));
            Client.send_request client ~id:1
              (Protocol.Job (check_job ~seed:101 ~ops:400 ()));
            Client.send_request client ~id:2
              (Protocol.Job (check_job ~seed:102 ~ops:400 ()));
            let rejected = ref None
            and results = ref 0 in
            let rec pump () =
              if !results < 2 || !rejected = None then
                match Client.next_event client with
                | Error e -> Alcotest.fail e
                | Ok (id, Protocol.Rejected { retry_after_ms }) ->
                  rejected := Some (id, retry_after_ms);
                  pump ()
                | Ok (_, Protocol.Result _) ->
                  incr results;
                  pump ()
                | Ok (_, _) -> pump ()
            in
            pump ();
            match !rejected with
            | Some (2, 615) -> ()
            | Some (id, ms) ->
              Alcotest.failf
                "expected request 2 rejected with 615ms advice, got %d/%dms"
                id ms
            | None -> Alcotest.fail "no rejection observed"));
    slow_case "clashing journaled campaigns are refused while queued" (fun () ->
        let journaled_campaign () =
          Protocol.Campaign
            {
              manifest =
                J.Assoc
                  [ ( "jobs",
                      J.List
                        [ J.Assoc
                            [ ("duv", J.String "des56");
                              ("level", J.String "rtl");
                              ("seed", J.Int 1);
                              ("ops", J.Int 10) ] ] ) ];
              workers = 1;
              retries = None;
              journal = true;
            }
        in
        with_server
          ~configure:(fun c ->
            { c with Server.workers = 1;
              state_dir = Some (Filename.dirname c.Server.socket) })
          (fun client _socket ->
            (* One worker, held by a slow check: both campaigns sit in
               the queue, where neither is running yet — admission must
               still refuse the second, or two writers would share one
               journal file once the worker frees up. *)
            Client.send_request client ~id:0
              (Protocol.Job (check_job ~seed:400 ~ops:400 ()));
            Client.send_request client ~id:1
              (Protocol.Job (journaled_campaign ()));
            Client.send_request client ~id:2
              (Protocol.Job (journaled_campaign ()));
            let rejected = ref None
            and campaign_done = ref false in
            let rec pump () =
              if !rejected = None || not !campaign_done then
                match Client.next_event client with
                | Error e -> Alcotest.fail e
                | Ok (id, Protocol.Rejected _) ->
                  rejected := Some id;
                  pump ()
                | Ok (2, Protocol.Result _) ->
                  Alcotest.fail "clashing campaign was executed"
                | Ok (1, Protocol.Result { ok; _ }) ->
                  Alcotest.(check bool) "surviving campaign is green" true ok;
                  campaign_done := true;
                  pump ()
                | Ok (_, _) -> pump ()
            in
            pump ();
            Alcotest.(check (option int)) "the queued clash bounced" (Some 2)
              !rejected));
    slow_case "a live request id cannot be reused" (fun () ->
        with_server
          ~configure:(fun c -> { c with Server.workers = 1 })
          (fun client _socket ->
            (* Same id pipelined while the first is still in flight:
               the second must bounce with a protocol error (the
               bookkeeping is keyed on (conn, id)), and the first must
               be unaffected.  Distinct seeds keep the warm cache out
               of the admission path. *)
            Client.send_request client ~id:0
              (Protocol.Job (check_job ~seed:500 ~ops:400 ()));
            Client.send_request client ~id:0
              (Protocol.Job (check_job ~seed:501 ~ops:400 ()));
            let dup_error = ref false
            and finished = ref false in
            let rec pump () =
              if not (!dup_error && !finished) then
                match Client.next_event client with
                | Error e -> Alcotest.fail e
                | Ok (0, Protocol.Error { message }) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "names the collision: %s" message)
                    true
                    (contains message "already queued or running");
                  dup_error := true;
                  pump ()
                | Ok (0, Protocol.Result { ok; _ }) ->
                  Alcotest.(check bool) "first request unaffected" true ok;
                  finished := true;
                  pump ()
                | Ok (_, _) -> pump ()
            in
            pump ()));
    slow_case "a second daemon cannot steal a live socket" (fun () ->
        with_server (fun client socket ->
            (* The socket file exists and a daemon is listening: a
               second serve on the same path must refuse to unlink it
               (it would leave the first daemon running but
               unreachable), and the first must stay reachable. *)
            (match Server.run (Server.default_config ~socket ()) with
             | _ -> Alcotest.fail "second daemon must refuse a live socket"
             | exception Failure msg ->
               Alcotest.(check bool)
                 (Printf.sprintf "names the path: %s" msg)
                 true (contains msg socket));
            match Client.control client Protocol.Ping with
            | Client.Pong -> ()
            | _ -> Alcotest.fail "original daemon no longer answers"));
    slow_case "disconnect mid-request cancels and frees the worker" (fun () ->
        with_server
          ~configure:(fun c -> { c with Server.workers = 1 })
          (fun client socket ->
            (* A second client fires a request and vanishes without
               reading; its work must be discarded and the worker must
               come back to serve the surviving client. *)
            (match Client.connect (`Unix socket) with
             | Error e -> Alcotest.fail e
             | Ok doomed ->
               Client.send_request doomed ~id:0
                 (Protocol.Job (check_job ~seed:200 ~ops:400 ()));
               Client.close doomed);
            (match Client.request client (check_job ()) with
             | Client.Result { ok = true; _ } -> ()
             | _ -> Alcotest.fail "worker never came back");
            match Client.control client Protocol.Stats with
            | Client.Stats json ->
              let cancelled =
                match J.member "metrics" json with
                | Some metrics ->
                  (match J.member "serve.requests_cancelled" metrics with
                   | Some counter ->
                     (match J.member "value" counter with
                      | Some (J.Int n) -> n
                      | _ -> -1)
                   | None -> -1)
                | None -> -1
              in
              Alcotest.(check int) "the abandoned request was cancelled" 1
                cancelled
            | _ -> Alcotest.fail "expected stats"));
    slow_case "shutdown drains accepted work before exiting" (fun () ->
        with_server (fun client _socket ->
            (* Pipeline a job, then shutdown on the same connection:
               the job was accepted, so its result must still arrive. *)
            Client.send_request client ~id:0
              (Protocol.Job (check_job ~seed:300 ~ops:100 ()));
            Client.send_request client ~id:1 (Protocol.Control Protocol.Shutdown);
            let got_result = ref false
            and got_drain = ref false in
            let rec pump () =
              if not (!got_result && !got_drain) then
                match Client.next_event client with
                | Error e -> Alcotest.fail e
                | Ok (0, Protocol.Result { ok = true; _ }) ->
                  got_result := true;
                  pump ()
                | Ok (1, Protocol.Shutting_down) ->
                  got_drain := true;
                  pump ()
                | Ok (_, _) -> pump ()
            in
            pump ()));
    slow_case "an overrunning job is deadlined with an honest error" (fun () ->
        with_server
          ~configure:(fun c ->
            { c with Server.workers = 1; job_timeout_s = Some 0.2 })
          (fun client _socket ->
            (* ~1.4s of real work against a 0.2s deadline: the client
               must get an error event naming the deadline, and the
               worker slot must come back for the next request. *)
            (match
               Client.request client (check_job ~seed:700 ~ops:20_000 ())
             with
             | Client.Failed msg ->
               Alcotest.(check bool)
                 (Printf.sprintf "echoes the deadline: %s" msg)
                 true
                 (contains msg "deadline exceeded"
                  && contains msg "--job-timeout")
             | Client.Result _ -> Alcotest.fail "the deadline never fired"
             | Client.Rejected _ -> Alcotest.fail "unexpected rejection");
            match Client.request client (check_job ()) with
            | Client.Result { ok = true; _ } -> ()
            | _ -> Alcotest.fail "worker never came back after the deadline"));
    slow_case "a client silent mid-frame is timed out and releases its reservations"
      (fun () ->
        let journaled_campaign () =
          Protocol.Campaign
            {
              manifest =
                J.Assoc
                  [ ( "jobs",
                      J.List
                        [ J.Assoc
                            [ ("duv", J.String "des56");
                              ("level", J.String "rtl");
                              ("seed", J.Int 2);
                              ("ops", J.Int 10) ] ] ) ];
              workers = 1;
              retries = None;
              journal = true;
            }
        in
        with_server
          ~configure:(fun c ->
            { c with Server.workers = 1; conn_idle_timeout_s = 0.4;
              state_dir = Some (Filename.dirname c.Server.socket) })
          (fun client socket ->
            (* The main client parks a ~1.4s job on the only worker.
               A second client then queues a journaled campaign (its
               journal path is now reserved), starts another request
               and goes silent halfway through the frame — a
               half-alive peer, not a disconnect.  The server must
               time the connection out while the worker is still busy
               and release the queued campaign's reservation, or the
               main client's identical campaign below would be refused
               as a journal clash forever. *)
            Client.send_request client ~id:0
              (Protocol.Job (check_job ~seed:800 ~ops:20_000 ()));
            let doomed =
              match Client.connect (`Unix socket) with
              | Ok c -> c
              | Error e -> Alcotest.fail e
            in
            Client.send_request doomed ~id:0
              (Protocol.Job (journaled_campaign ()));
            Client.interpose doomed (fun frame ->
                [ `Chunk (String.sub frame 0 (String.length frame - 5)) ]);
            Client.send_request doomed ~id:1
              (Protocol.Job (check_job ~seed:801 ()));
            (* Wait out the parked job; the doomed connection times
               out (0.4s) well before the worker frees (~1.4s). *)
            let rec wait_parked () =
              match Client.next_event client with
              | Ok (0, Protocol.Result { ok = true; _ }) -> ()
              | Ok (_, (Protocol.Accepted _ | Protocol.Started)) ->
                wait_parked ()
              | Ok _ -> Alcotest.fail "unexpected event for the parked job"
              | Error e -> Alcotest.fail e
            in
            wait_parked ();
            (match Client.request client (journaled_campaign ()) with
             | Client.Result { ok = true; _ } -> ()
             | Client.Result _ -> Alcotest.fail "campaign went red"
             | Client.Rejected _ ->
               Alcotest.fail "the dead client's journal reservation leaked"
             | Client.Failed msg -> Alcotest.fail msg);
            (match Client.control client Protocol.Stats with
             | Client.Stats json ->
               let timed_out =
                 match J.member "metrics" json with
                 | Some metrics ->
                   (match J.member "serve.connections_timed_out" metrics with
                    | Some counter ->
                      (match J.member "value" counter with
                       | Some (J.Int n) -> n
                       | _ -> -1)
                    | None -> -1)
                 | None -> -1
               in
               Alcotest.(check int) "exactly the silent connection timed out" 1
                 timed_out
             | _ -> Alcotest.fail "expected stats");
            Client.close doomed)) ]

let suite =
  ( "serve",
    sched_cases @ breaker_cases @ warm_cases @ frame_cases @ frame_fuzz_cases
    @ journal_cases @ handler_cases @ serve_cases )
