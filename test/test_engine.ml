open Tabv_sim
open Tabv_duv

(* Cross-engine equivalence: the compiled (static-schedule) kernel
   engine must be observationally indistinguishable from the classic
   dynamic reference — same outcomes, same counters, byte-identical
   observability documents — on every DUV model, on fused-block corner
   cases (stop and crash containment mid-block), and on randomly
   generated elaborated netlists. *)

let case name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* --- all nine DUV testbenches -------------------------------------- *)

(* One document per (model, engine): reset the process-global checker
   universe before each run so the engine cache statistics embedded in
   the document are run-local and comparable. *)
let duv_documents () =
  let des_ops = Workload.des56 ~seed:42 ~count:60 () in
  let cc_bursts = Workload.colorconv ~seed:42 ~count:400 () in
  let mc_ops = Workload.memctrl ~seed:42 ~count:60 () in
  let doc run sim_engine =
    Tabv_checker.Progression.reset_universe ();
    let metrics = Tabv_obs.Metrics.create ~enabled:true () in
    Tabv_core.Report_json.to_string
      (Testbench.metrics_json (run ~metrics ~sim_engine))
  in
  [ ( "des56-rtl",
      fun e ->
        doc
          (fun ~metrics ~sim_engine ->
            Testbench.run_des56_rtl ~metrics ~sim_engine
              ~properties:Des56_props.all des_ops)
          e );
    ( "des56-tlm-ca",
      fun e ->
        doc
          (fun ~metrics ~sim_engine ->
            Testbench.run_des56_tlm_ca ~metrics ~sim_engine
              ~properties:Des56_props.all des_ops)
          e );
    ( "des56-tlm-at",
      fun e ->
        doc
          (fun ~metrics ~sim_engine ->
            Testbench.run_des56_tlm_at ~metrics ~sim_engine
              ~properties:(Des56_props.tlm_auto_safe ()) des_ops)
          e );
    ( "des56-tlm-lt",
      fun e ->
        doc
          (fun ~metrics ~sim_engine ->
            Testbench.run_des56_tlm_lt ~metrics ~sim_engine
              ~properties:(Des56_props.tlm_auto_safe ()) des_ops)
          e );
    ( "colorconv-rtl",
      fun e ->
        doc
          (fun ~metrics ~sim_engine ->
            Testbench.run_colorconv_rtl ~metrics ~sim_engine
              ~properties:Colorconv_props.all cc_bursts)
          e );
    ( "colorconv-tlm-ca",
      fun e ->
        doc
          (fun ~metrics ~sim_engine ->
            Testbench.run_colorconv_tlm_ca ~metrics ~sim_engine
              ~properties:Colorconv_props.all cc_bursts)
          e );
    ( "colorconv-tlm-at",
      fun e ->
        doc
          (fun ~metrics ~sim_engine ->
            Testbench.run_colorconv_tlm_at ~metrics ~sim_engine
              ~properties:(Colorconv_props.tlm_auto_safe ()) cc_bursts)
          e );
    ( "memctrl-rtl",
      fun e ->
        doc
          (fun ~metrics ~sim_engine ->
            Memctrl_testbench.run_rtl ~metrics ~sim_engine
              ~properties:Memctrl_props.all mc_ops)
          e );
    ( "memctrl-tlm-at",
      fun e ->
        doc
          (fun ~metrics ~sim_engine ->
            Memctrl_testbench.run_tlm_at ~metrics ~sim_engine
              ~properties:(Memctrl_props.tlm_auto_safe ()) mc_ops)
          e ) ]

let duv_cases =
  [ case "all DUV documents are byte-identical across engines" (fun () ->
      List.iter
        (fun (model, doc) ->
          Alcotest.(check string) model (doc Kernel.Classic) (doc Kernel.Compiled))
        (duv_documents ()));
    case "outcomes match across engines and seeds" (fun () ->
      List.iter
        (fun seed ->
          let ops = Workload.des56 ~seed ~count:40 () in
          let run e =
            let r =
              Testbench.run_des56_rtl ~sim_engine:e ~properties:Des56_props.all
                ops
            in
            ( r.Testbench.sim_time_ns,
              r.Testbench.kernel_activations,
              r.Testbench.delta_cycles,
              r.Testbench.completed_ops,
              r.Testbench.outputs,
              Testbench.total_failures r )
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d" seed)
            true
            (run Kernel.Classic = run Kernel.Compiled))
        [ 1; 7; 42 ]) ]

(* --- VCD byte-identity --------------------------------------------- *)

let vcd_cases =
  [ case "recorded trace dumps to byte-identical VCD on both engines" (fun () ->
      let ops = Workload.des56 ~seed:42 ~count:30 () in
      let vcd e =
        let r = Testbench.run_des56_rtl ~sim_engine:e ~record_trace:true ops in
        let trace =
          match r.Testbench.trace with
          | Some t -> t
          | None -> Alcotest.fail "no trace recorded"
        in
        let path = Filename.temp_file "tabv_engine" ".vcd" in
        Trace_dump.to_file trace path;
        let contents = In_channel.with_open_bin path In_channel.input_all in
        Sys.remove path;
        contents
      in
      Alcotest.(check string) "vcd" (vcd Kernel.Classic) (vcd Kernel.Compiled)) ]

(* --- levelization -------------------------------------------------- *)

let netlist_chain kernel depth =
  (* clocked root -> comb stage 1 -> ... -> comb stage [depth]: each
     stage is sensitive to the previous stage's output signal. *)
  let el = Elab.create kernel in
  let clock = Clock.create kernel ~name:"clk" ~period:10 () in
  let prev = ref (Elab.signal_int el "s0") in
  let root_out = !prev in
  Elab.process el ~name:"root" ~pos:__POS__ ~initialize:false
    ~sensitivity:[ Clock.posedge clock ]
    ~writes:[ Elab.Pack root_out ]
    (fun () -> Signal.write root_out (Signal.read root_out + 1));
  for i = 1 to depth do
    let input = !prev in
    let output = Elab.signal_int el (Printf.sprintf "s%d" i) in
    Elab.process el
      ~name:(Printf.sprintf "stage%d" i)
      ~pos:__POS__ ~initialize:false
      ~sensitivity:[ Signal.changed input ]
      ~reads:[ Elab.Pack input ]
      ~writes:[ Elab.Pack output ]
      (fun () -> Signal.write output (Signal.read input + 1));
    prev := output
  done;
  el

let levelization_cases =
  [ case "a combinational chain levelizes to its depth" (fun () ->
      let kernel = Kernel.create () in
      let el = netlist_chain kernel 5 in
      Alcotest.(check int) "levels" 6 (Elab.levels el));
    case "a register self-loop is not a cycle" (fun () ->
      let kernel = Kernel.create () in
      let el = Elab.create kernel in
      let clock = Clock.create kernel ~name:"clk" ~period:10 () in
      let q = Elab.signal_bool el "q" in
      Elab.process el ~name:"reg" ~pos:__POS__ ~initialize:false
        ~sensitivity:[ Clock.posedge clock ]
        ~reads:[ Elab.Pack q ] ~writes:[ Elab.Pack q ]
        (fun () -> Signal.write q (not (Signal.read q)));
      Alcotest.(check int) "levels" 1 (Elab.levels el));
    case "a zero-delay cycle raises a positioned elaboration error" (fun () ->
      let kernel = Kernel.create () in
      let el = Elab.create kernel in
      let a = Elab.signal_bool el "a" in
      let b = Elab.signal_bool el "b" in
      Elab.process el ~name:"p_ab" ~pos:__POS__
        ~sensitivity:[ Signal.changed a ]
        ~reads:[ Elab.Pack a ] ~writes:[ Elab.Pack b ]
        (fun () -> Signal.write b (not (Signal.read a)));
      Elab.process el ~name:"p_ba" ~pos:__POS__
        ~sensitivity:[ Signal.changed b ]
        ~reads:[ Elab.Pack b ] ~writes:[ Elab.Pack a ]
        (fun () -> Signal.write a (not (Signal.read b)));
      match Elab.compile el with
      | () -> Alcotest.fail "cycle not detected"
      | exception Elab.Cycle_error msg ->
        let mem needle =
          Alcotest.(check bool)
            (Printf.sprintf "message mentions %S" needle)
            true (contains msg needle)
        in
        mem "p_ab";
        mem "p_ba";
        mem "test_engine.ml") ]

(* --- fused activation blocks --------------------------------------- *)

(* [procs] clocked processes on one edge event bump a shared cell; on
   the compiled engine they run as one fused block, so stop and crash
   containment mid-block must behave exactly like the classic
   per-action loop. *)
let fused_fixture engine ~procs ~behaviour =
  let kernel = Kernel.create ~engine () in
  let el = Elab.create kernel in
  let clock = Clock.create kernel ~name:"clk" ~period:10 () in
  let hits = ref 0 in
  for p = 0 to procs - 1 do
    Elab.process el
      ~name:(Printf.sprintf "p%d" p)
      ~pos:__POS__ ~initialize:false
      ~sensitivity:[ Clock.posedge clock ]
      (fun () ->
        incr hits;
        behaviour kernel p)
  done;
  (kernel, clock, hits)

let fused_cases =
  [ case "stop mid-block halts like the classic per-action loop" (fun () ->
      let run engine =
        let kernel, _, hits =
          fused_fixture engine ~procs:8 ~behaviour:(fun k p ->
              if p = 2 then Kernel.stop k)
        in
        ignore (Kernel.run ~until:100 kernel);
        (!hits, Kernel.activation_count kernel)
      in
      Alcotest.(check (pair int int))
        "hits and activations" (run Kernel.Classic) (run Kernel.Compiled));
    case "a crash mid-block is contained and attributed identically" (fun () ->
      let run engine =
        let kernel, _, hits =
          fused_fixture engine ~procs:8 ~behaviour:(fun _ p ->
              if p = 3 then failwith "boom")
        in
        let guard = { Kernel.default_guard with contain_crashes = true } in
        ignore (Kernel.run ~until:40 kernel ~guard);
        ( !hits,
          Kernel.activation_count kernel,
          Kernel.contained_crash_count kernel,
          Kernel.diagnosis_to_string (Kernel.last_diagnosis kernel) )
      in
      let classic = run Kernel.Classic and compiled = run Kernel.Compiled in
      Alcotest.(check bool) "identical" true (classic = compiled);
      let _, _, crashes, diagnosis = compiled in
      Alcotest.(check bool) "at least one crash" true (crashes > 0);
      Alcotest.(check bool) "attributed to p3" true (contains diagnosis "p3"));
    case "a late subscriber invalidates the fused view" (fun () ->
      (* Subscribing to a fused event after compilation must fall back
         to per-handler scheduling, keeping old and new handlers firing
         in registration order. *)
      let kernel, clock, hits =
        fused_fixture Kernel.Compiled ~procs:4 ~behaviour:(fun _ _ -> ())
      in
      ignore (Kernel.run ~until:14 kernel);
      let cycles1 = !hits / 4 in
      Alcotest.(check bool) "at least one cycle ran" true (cycles1 >= 1);
      let seen = ref 0 in
      Event.on_event (Clock.posedge clock) (fun () -> incr seen);
      ignore (Kernel.run ~until:54 kernel);
      let cycles2 = (!hits / 4) - cycles1 in
      Alcotest.(check bool) "more cycles ran" true (cycles2 >= 1);
      Alcotest.(check int) "old handlers kept firing" 0 (!hits mod 4);
      Alcotest.(check int) "new handler fired every cycle" cycles2 !seen) ]

(* --- partition-parallel determinism -------------------------------- *)

let partition_netlist kernel ~parts ~stages =
  (* [parts] independent register chains: union-find proves them
     disjoint, so they levelize into [parts] partitions. *)
  let el = Elab.create kernel in
  let clock = Clock.create kernel ~name:"clk" ~period:10 () in
  let cells = Array.make parts None in
  for p = 0 to parts - 1 do
    let s = Elab.signal_int el (Printf.sprintf "part%d_s" p) in
    cells.(p) <- Some s;
    Elab.process el
      ~name:(Printf.sprintf "part%d" p)
      ~pos:__POS__ ~initialize:false
      ~sensitivity:[ Clock.posedge clock ]
      ~reads:[ Elab.Pack s ] ~writes:[ Elab.Pack s ]
      (fun () ->
        let v = ref (Signal.read s) in
        for _ = 1 to stages do
          v := (!v * 7) + 3
        done;
        Signal.write s !v)
  done;
  (el, Array.map Option.get cells)

let partition_cases =
  [ case "independent chains split into one partition each" (fun () ->
      let kernel = Kernel.create ~engine:Kernel.Compiled () in
      let el, _ = partition_netlist kernel ~parts:4 ~stages:1 in
      Alcotest.(check int) "partitions" 4 (Elab.partition_count el));
    case "pooled evaluation matches classic and serial results" (fun () ->
      let final engine ~pooled =
        let kernel = Kernel.create ~engine () in
        let el, cells = partition_netlist kernel ~parts:4 ~stages:5 in
        let parallelized =
          if pooled then Elab.parallelize el ~domains:2 else false
        in
        ignore (Kernel.run ~until:200 kernel);
        Kernel.shutdown_pool kernel;
        if pooled then
          Alcotest.(check bool) "pool installed" true parallelized;
        ( Array.to_list (Array.map Signal.observe cells),
          Kernel.activation_count kernel,
          Kernel.delta_count kernel )
      in
      let classic = final Kernel.Classic ~pooled:false in
      let serial = final Kernel.Compiled ~pooled:false in
      let pooled = final Kernel.Compiled ~pooled:true in
      Alcotest.(check bool) "serial = classic" true (classic = serial);
      Alcotest.(check bool) "pooled = classic" true (classic = pooled));
    case "concurrent dirty flags on adjacent slots stay deduplicated" (fun () ->
      (* Eight single-process partitions claim the first eight int
         arena slots; every activation double-writes its signal, so
         the second write must see the pending flag the first one set.
         Worker domains mark those adjacent flags concurrently — a
         packed bitset's read-modify-write could erase a neighbour
         partition's just-set flag, staging a duplicate update thunk
         and skewing [update_actions] (the regression behind the
         per-slot flag array). *)
      let final engine ~pooled =
        let kernel = Kernel.create ~engine () in
        let el = Elab.create kernel in
        let clock = Clock.create kernel ~name:"clk" ~period:10 () in
        let parts = 8 in
        let cells =
          Array.init parts (fun p ->
              Elab.signal_int el (Printf.sprintf "slot%d_s" p))
        in
        Array.iteri
          (fun p s ->
            Elab.process el
              ~name:(Printf.sprintf "slot%d" p)
              ~pos:__POS__ ~initialize:false
              ~sensitivity:[ Clock.posedge clock ]
              ~reads:[ Elab.Pack s ] ~writes:[ Elab.Pack s ]
              (fun () ->
                let v = Signal.read s in
                Signal.write s (v + 1);
                Signal.write s ((v * 3) + 1)))
          cells;
        let parallelized =
          if pooled then Elab.parallelize el ~domains:4 else false
        in
        ignore (Kernel.run ~until:2000 kernel);
        Kernel.shutdown_pool kernel;
        if pooled then
          Alcotest.(check bool) "pool installed" true parallelized;
        ( Array.to_list (Array.map Signal.observe cells),
          Kernel.activation_count kernel,
          Kernel.delta_count kernel,
          Kernel.update_action_count kernel )
      in
      let classic = final Kernel.Classic ~pooled:false in
      let serial = final Kernel.Compiled ~pooled:false in
      let pooled = final Kernel.Compiled ~pooled:true in
      Alcotest.(check bool) "serial = classic" true (classic = serial);
      Alcotest.(check bool) "pooled = classic" true (classic = pooled));
    case "stop from an inline action discards bucketed work" (fun () ->
      (* An untagged action calling [stop] mid-dispatch halts the
         pooled evaluation phase: partition actions already bucketed
         are discarded, never run past the stop point, and the kernel
         counters still match the serial engines (bucketed actions are
         counted at dispatch). *)
      let build engine =
        let kernel = Kernel.create ~engine () in
        let el = Elab.create kernel in
        let clock = Clock.create kernel ~name:"clk" ~period:10 () in
        let hits = Array.make 4 0 in
        let part p =
          let s = Elab.signal_int el (Printf.sprintf "stop%d_s" p) in
          Elab.process el
            ~name:(Printf.sprintf "stop%d" p)
            ~pos:__POS__ ~initialize:false
            ~sensitivity:[ Clock.posedge clock ]
            ~reads:[ Elab.Pack s ] ~writes:[ Elab.Pack s ]
            (fun () ->
              hits.(p) <- hits.(p) + 1;
              Signal.write s (Signal.read s + 1))
        in
        part 0;
        part 1;
        (* Untagged (no declared reads/writes): dispatched inline on
           the main domain, between the two bucketed pairs. *)
        Elab.process el ~name:"stopper" ~pos:__POS__ ~initialize:false
          ~sensitivity:[ Clock.posedge clock ]
          (fun () -> Kernel.stop kernel);
        part 2;
        part 3;
        (kernel, el, hits)
      in
      let run engine ~pooled =
        let kernel, el, hits = build engine in
        if pooled then
          Alcotest.(check bool) "pool installed" true
            (Elab.parallelize el ~domains:2);
        ignore (Kernel.run ~until:100 kernel);
        Kernel.shutdown_pool kernel;
        ( ( Kernel.activation_count kernel,
            Kernel.delta_count kernel,
            Kernel.update_action_count kernel,
            Kernel.now kernel ),
          Array.fold_left ( + ) 0 hits )
      in
      let classic, classic_hits = run Kernel.Classic ~pooled:false in
      let serial, serial_hits = run Kernel.Compiled ~pooled:false in
      let pooled, pooled_hits = run Kernel.Compiled ~pooled:true in
      Alcotest.(check bool) "serial counters = classic" true (classic = serial);
      Alcotest.(check bool) "pooled counters = classic" true (classic = pooled);
      Alcotest.(check int) "serial ran the pre-stop prefix" classic_hits
        serial_hits;
      Alcotest.(check int) "no bucketed action ran past stop" 0 pooled_hits) ]

(* --- random netlists (schedule vs dynamic reference) ---------------- *)

(* A random acyclic elaborated netlist: process [i] is sensitive
   either to the clock or to signals written by lower-numbered
   processes (so zero-delay cycles are impossible by construction),
   and writes its own output signal. *)
let netlist_spec =
  QCheck.make
    ~print:(fun spec ->
      String.concat ";"
        (List.map
           (fun deps ->
             "["
             ^ String.concat "," (List.map string_of_int deps)
             ^ "]")
           spec))
    QCheck.Gen.(
      let dep_list i =
        if i = 0 then return []
        else list_size (int_bound (min i 3)) (int_bound (i - 1))
      in
      sized_size (int_range 1 12) (fun n ->
          let rec build i acc =
            if i >= n then return (List.rev acc)
            else dep_list i >>= fun deps -> build (i + 1) (deps :: acc)
          in
          build 0 []))

let run_random_netlist engine spec =
  let kernel = Kernel.create ~engine () in
  let el = Elab.create kernel in
  let clock = Clock.create kernel ~name:"clk" ~period:10 () in
  let outputs =
    List.mapi (fun i _ -> Elab.signal_int el (Printf.sprintf "n%d" i)) spec
  in
  let out = Array.of_list outputs in
  List.iteri
    (fun i deps ->
      let inputs = List.sort_uniq compare deps in
      let sensitivity =
        if inputs = [] then [ Clock.posedge clock ]
        else List.map (fun j -> Signal.changed out.(j)) inputs
      in
      let reads = List.map (fun j -> Elab.Pack out.(j)) inputs in
      Elab.process el
        ~name:(Printf.sprintf "proc%d" i)
        ~pos:__POS__ ~initialize:false ~sensitivity ~reads
        ~writes:[ Elab.Pack out.(i) ]
        (fun () ->
          let acc =
            List.fold_left (fun acc j -> acc + Signal.read out.(j)) 1 inputs
          in
          Signal.write out.(i) (Signal.read out.(i) + acc)))
    spec;
  ignore (Kernel.run ~until:100 kernel);
  ( List.map Signal.observe outputs,
    Kernel.activation_count kernel,
    Kernel.delta_count kernel,
    Kernel.update_action_count kernel,
    Kernel.now kernel )

let random_cases =
  [ Helpers.qtest ~count:100 "random netlist: compiled = classic" netlist_spec
      (fun spec ->
        run_random_netlist Kernel.Classic spec
        = run_random_netlist Kernel.Compiled spec) ]

let suite =
  ( "engine",
    duv_cases @ vcd_cases @ levelization_cases @ fused_cases @ partition_cases
    @ random_cases )
