open Tabv_psl
open Tabv_checker

(* The interned checker core: hash-consing invariants, and
   property-based equivalence of the interned memoizing engine against
   the legacy tree-rewriting engine it replaced (which is kept in
   [Progression.Legacy] as the executable specification). *)

let case name f = Alcotest.test_case name `Quick f
let formula source = Parser.formula_only source

(* --- hash-consing invariants --------------------------------------- *)

let hashcons_cases =
  [ case "structurally equal terms share one heap node" (fun () ->
      let a = Interned.intern (formula "always(a until next[2](b))") in
      let b = Interned.intern (formula "always(a until next[2](b))") in
      Alcotest.(check bool) "physically equal" true (a == b);
      Alcotest.(check int) "same id" (Interned.id a) (Interned.id b));
    case "distinct terms get distinct ids" (fun () ->
      let a = Interned.intern (formula "a until b") in
      let b = Interned.intern (formula "b until a") in
      Alcotest.(check bool) "not equal" false (Interned.equal a b);
      Alcotest.(check bool) "distinct ids" true (Interned.id a <> Interned.id b));
    case "ids are stable across re-interning" (fun () ->
      let a = Interned.intern (formula "eventually(a && b)") in
      let id = Interned.id a in
      let _ = Interned.intern (formula "always(c)") in
      Alcotest.(check int) "same id later" id
        (Interned.id (Interned.intern (formula "eventually(a && b)"))));
    case "next_n collapses nested counts" (fun () ->
      let p = Interned.atom (Expr.Var "a") in
      Alcotest.(check bool) "next[2](next[3] p) == next[5] p" true
        (Interned.next_n 2 (Interned.next_n 3 p) == Interned.next_n 5 p);
      Alcotest.(check bool) "next[0] is identity" true (Interned.next_n 0 p == p));
    case "is_timed reflects next_eps^tau" (fun () ->
      Alcotest.(check bool) "timed" true
        (Interned.is_timed (Interned.intern (formula "always(nexte[1,170](a))")));
      Alcotest.(check bool) "untimed" false
        (Interned.is_timed (Interned.intern (formula "always(next[17](a))"))));
    case "interning does not grow the table on re-insertion" (fun () ->
      let f = formula "always((a && b) || (a && b))" in
      let _ = Interned.intern f in
      let before = Interned.node_count () in
      let _ = Interned.intern f in
      Alcotest.(check int) "node count unchanged" before (Interned.node_count ()));
    Helpers.qtest ~count:500 "intern / to_ltl round-trips structurally"
      Helpers.arb_ltl_general (fun f ->
        (* next_n flattening is the one normalisation intern performs;
           the generator never nests Next_n directly, so the
           round-trip is structural identity. *)
        Ltl.equal (Interned.to_ltl (Interned.intern f)) f);
    Helpers.qtest ~count:500 "physical equality = structural equality"
      QCheck.(pair Helpers.arb_ltl_general Helpers.arb_ltl_general)
      (fun (f, g) ->
        let fi = Interned.intern f and gi = Interned.intern g in
        Interned.equal fi gi = Ltl.equal (Interned.to_ltl fi) (Interned.to_ltl gi))
  ]

(* --- step-level equivalence: interned engine vs. legacy ------------- *)

let verdicts_agree (f, trace) =
  let ob = ref (Progression.of_formula f) in
  let leg = ref (Progression.Legacy.of_formula f) in
  let ok = ref true in
  for i = 0 to Trace.length trace - 1 do
    let entry = Trace.get trace i in
    let lookup = Trace.lookup entry in
    ob := Progression.step ~time:entry.Trace.time lookup !ob;
    leg := Progression.step_reference ~time:entry.Trace.time lookup !leg;
    if Progression.verdict !ob <> Progression.Legacy.verdict !leg then ok := false;
    if
      Progression.next_evaluation_time !ob
      <> Progression.Legacy.next_evaluation_time !leg
    then ok := false
  done;
  !ok

let step_equivalence_cases =
  [ Helpers.qtest ~count:500 "interned progression = legacy progression (untimed)"
      Helpers.arb_nnf_and_trace verdicts_agree;
    Helpers.qtest ~count:500 "interned progression = legacy progression (timed)"
      Helpers.arb_timed_nnf_and_trace verdicts_agree ]

(* --- monitor-level equivalence ------------------------------------- *)

(* Full wrapper accounting must be independent of the engine: failure
   lists (with attribution), activation/pass/pending counters, peak
   instance counts and the timed evaluation table. *)

let run_monitor engine (f, trace) =
  let property =
    Property.make ~name:"eq" ~context:(Context.Transaction Context.Base_trans) f
  in
  let monitor = Monitor.create ~engine property in
  for i = 0 to Trace.length trace - 1 do
    let entry = Trace.get trace i in
    Monitor.step monitor ~time:entry.Trace.time (Trace.lookup entry)
  done;
  monitor

let summary monitor =
  ( List.map
      (fun f -> (f.Monitor.activation_time, f.Monitor.failure_time))
      (Monitor.failures monitor),
    ( Monitor.activations monitor,
      Monitor.passes monitor,
      Monitor.trivial_passes monitor,
      Monitor.pending monitor ),
    (Monitor.peak_instances monitor, Monitor.vacuous monitor),
    Monitor.evaluation_table monitor )

let monitors_agree arg =
  summary (run_monitor `Progression arg)
  = summary (run_monitor `Progression_legacy arg)

let monitor_equivalence_cases =
  [ Helpers.qtest ~count:300 "monitor accounting engine-independent (general)"
      Helpers.arb_ltl_and_trace monitors_agree;
    Helpers.qtest ~count:300 "monitor accounting engine-independent (timed)"
      Helpers.arb_timed_nnf_and_trace monitors_agree;
    Helpers.qtest ~count:200 "distinct states never exceed live instances"
      Helpers.arb_ltl_and_trace (fun arg ->
        let monitor = run_monitor `Progression arg in
        Monitor.peak_distinct_states monitor <= Monitor.peak_instances monitor) ]

(* --- shared sampler ------------------------------------------------ *)

let lookup_of bindings name = List.assoc_opt name bindings
let env ~a ~b = lookup_of [ ("a", Expr.VBool a); ("b", Expr.VBool b) ]

let sampler_cases =
  [ case "shared sampler evaluates each atom once per instant" (fun () ->
      let sampler = Sampler.create () in
      let monitors =
        List.init 4 (fun i ->
            Monitor.create ~sampler
              (Parser.property_exn ~name:(Printf.sprintf "s%d" i)
                 "always(a || next(b))"))
      in
      for t = 0 to 9 do
        List.iter
          (fun m -> Monitor.step m ~time:(t * 10) (env ~a:(t mod 2 = 0) ~b:true))
          monitors
      done;
      Alcotest.(check bool) "cache shared across the pool" true
        (Sampler.evals sampler < Sampler.queries sampler);
      (* Each distinct atom is evaluated at most once per instant: the
         miss count is bounded by instants * distinct atoms (2). *)
      Alcotest.(check bool) "at most one eval per atom per instant" true
        (Sampler.evals sampler <= 10 * 2));
    case "shared sampler does not change verdicts" (fun () ->
      let shared = Sampler.create () in
      let mk sampler =
        Monitor.create ?sampler (Parser.property_exn ~name:"v" "always(a || next(b))")
      in
      let pooled = List.init 3 (fun _ -> mk (Some shared)) in
      let solo = mk None in
      let drive m =
        Monitor.step m ~time:0 (env ~a:false ~b:false);
        Monitor.step m ~time:10 (env ~a:true ~b:false);
        Monitor.step m ~time:20 (env ~a:false ~b:true)
      in
      List.iter drive pooled;
      drive solo;
      let failure_times m =
        List.map (fun f -> f.Monitor.failure_time) (Monitor.failures m)
      in
      List.iter
        (fun m ->
          Alcotest.(check (list int)) "same failures" (failure_times solo)
            (failure_times m))
        pooled) ]

let suite =
  ("interned",
   hashcons_cases @ step_equivalence_cases @ monitor_equivalence_cases
   @ sampler_cases)
