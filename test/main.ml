(* Hidden subprocess-executor hook: the campaign tests exercise
   process isolation with the default worker argv, which re-executes
   *this* binary with [_worker].  Must run before Alcotest sees the
   command line. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "_worker" then begin
    Tabv_campaign.Worker.main ();
    exit 0
  end

let () =
  Alcotest.run "tabv"
    [ Test_expr.suite;
      Test_ltl.suite;
      Test_parser.suite;
      Test_nnf.suite;
      Test_semantics.suite;
      Test_simple_subset.suite;
      Test_push_ahead.suite;
      Test_next_substitution.suite;
      Test_signal_abstraction.suite;
      Test_methodology.suite;
      Test_kernel.suite;
      Test_signal_clock.suite;
      Test_progression.suite;
      Test_interned.suite;
      Test_des.suite;
      Test_colorconv.suite;
      Test_duv_models.suite;
      Test_fault_injection.suite;
      Test_grid_wrapper.suite;
      Test_monitor.suite;
      Test_misc.suite;
      Test_prop_files.suite;
      Test_paper_artifacts.suite;
      Test_memctrl.suite;
      Test_automaton.suite;
      Test_exhaustive.suite;
      Test_vcd_replay.suite;
      Test_sere.suite;
      Test_sim_extra.suite;
      Test_robustness.suite;
      Test_multiclock.suite;
      Test_obs.suite;
      Test_engine.suite;
      Test_campaign.suite;
      Test_trace.suite;
      Test_serve.suite;
      Test_durability.suite ]
