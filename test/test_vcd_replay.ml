open Tabv_psl
open Tabv_sim

(* The VCD reader, and offline replay of checkers over parsed
   waveforms.  The deprecated [Replay.run] shim is exercised on
   purpose here (its equivalence with the offline runner is pinned in
   test_trace.ml). *)
[@@@alert "-deprecated"]

let case name f = Alcotest.test_case name `Quick f

let sample_vcd =
  "$date handwritten $end\n\
   $timescale 1ns $end\n\
   $scope module top $end\n\
   $var wire 1 ! ds $end\n\
   $var wire 1 \" rdy $end\n\
   $var wire 8 # data $end\n\
   $upscope $end\n\
   $enddefinitions $end\n\
   #0\n\
   1!\n\
   0\"\n\
   b00101010 #\n\
   #170\n\
   0!\n\
   1\"\n\
   #180\n\
   0\"\n"

let reader_cases =
  [ case "parses a handwritten VCD" (fun () ->
      let parsed = Vcd_reader.parse sample_vcd in
      Alcotest.(check (option string)) "timescale" (Some "1ns")
        parsed.Vcd_reader.timescale;
      Alcotest.(check (list (pair string int)))
        "signals"
        [ ("ds", 1); ("rdy", 1); ("data", 8) ]
        parsed.Vcd_reader.signals;
      Alcotest.(check int) "entries" 3 (Trace.length parsed.Vcd_reader.trace);
      let entry0 = Trace.get parsed.Vcd_reader.trace 0 in
      Alcotest.(check int) "t0" 0 entry0.Trace.time;
      (match Trace.lookup entry0 "ds", Trace.lookup entry0 "data" with
       | Some (Expr.VBool true), Some (Expr.VInt 42) -> ()
       | _ -> Alcotest.fail "wrong entry 0 values");
      (* Sample-and-hold: data keeps 42 at 170 ns. *)
      let entry1 = Trace.get parsed.Vcd_reader.trace 1 in
      (match Trace.lookup entry1 "data", Trace.lookup entry1 "rdy" with
       | Some (Expr.VInt 42), Some (Expr.VBool true) -> ()
       | _ -> Alcotest.fail "wrong entry 1 values"));
    case "x and z bits read as zero" (fun () ->
      let vcd =
        "$var wire 1 ! s $end\n$enddefinitions $end\n#0\nx!\n#10\nz!\n#20\n1!\n"
      in
      let parsed = Vcd_reader.parse vcd in
      let value i =
        match Trace.lookup (Trace.get parsed.Vcd_reader.trace i) "s" with
        | Some (Expr.VBool b) -> b
        | _ -> Alcotest.fail "missing"
      in
      Alcotest.(check bool) "x is 0" false (value 0);
      Alcotest.(check bool) "z is 0" false (value 1);
      Alcotest.(check bool) "then 1" true (value 2));
    case "unknown identifier rejected" (fun () ->
      match Vcd_reader.parse "$enddefinitions $end\n#0\n1!\n" with
      | _ -> Alcotest.fail "expected Parse_error"
      | exception Vcd_reader.Parse_error { line = 3; _ } -> ()
      | exception Vcd_reader.Parse_error _ -> Alcotest.fail "wrong line");
    case "duplicate timestamps merge into one evaluation point" (fun () ->
      let vcd =
        "$var wire 1 ! s $end\n$enddefinitions $end\n#0\n1!\n#10\n0!\n#10\n1!\n#20\n"
      in
      let parsed = Vcd_reader.parse vcd in
      Alcotest.(check int) "entries" 3 (Trace.length parsed.Vcd_reader.trace);
      (* The last change of the merged instant wins. *)
      (match Trace.lookup (Trace.get parsed.Vcd_reader.trace 1) "s" with
       | Some (Expr.VBool true) -> ()
       | _ -> Alcotest.fail "expected merged value"));
    case "time going backwards rejected" (fun () ->
      match
        Vcd_reader.parse "$var wire 1 ! s $end\n$enddefinitions $end\n#10\n#5\n"
      with
      | _ -> Alcotest.fail "expected Parse_error"
      | exception Vcd_reader.Parse_error _ -> ()) ]

let roundtrip_cases =
  [ case "writer output parses back to the same trace" (fun () ->
      let path = Filename.temp_file "tabv" ".vcd" in
      let oc = open_out path in
      let vcd = Vcd.create oc ~timescale:"1ns" in
      let ds = Vcd.add_var vcd ~name:"ds" ~width:1 in
      let out = Vcd.add_var vcd ~name:"out" ~width:16 in
      Vcd.change_bool vcd ~time:0 ds true;
      Vcd.change_int64 vcd ~time:0 out 0L;
      Vcd.change_bool vcd ~time:10 ds false;
      Vcd.change_int64 vcd ~time:170 out 0xBEEFL;
      Vcd.close vcd;
      close_out oc;
      let parsed = Vcd_reader.load path in
      Sys.remove path;
      Alcotest.(check int) "entries" 3 (Trace.length parsed.Vcd_reader.trace);
      (match
         Trace.lookup (Trace.get parsed.Vcd_reader.trace 2) "out"
       with
       | Some (Expr.VInt v) -> Alcotest.(check int) "value" 0xBEEF v
       | _ -> Alcotest.fail "missing out")) ]

let replay_cases =
  [ case "replay passes on a conforming waveform" (fun () ->
      let parsed = Vcd_reader.parse sample_vcd in
      let q3 = Parser.property_exn ~name:"q3" "always (!ds || nexte[1,170](rdy)) @tb" in
      let outcomes = Tabv_checker.Replay.run [ q3 ] parsed.Vcd_reader.trace in
      Alcotest.(check bool) "passed" true (Tabv_checker.Replay.all_passed outcomes));
    case "replay fails on a late waveform" (fun () ->
      let late =
        "$var wire 1 ! ds $end\n$var wire 1 \" rdy $end\n$enddefinitions $end\n\
         #0\n1!\n0\"\n#180\n0!\n1\"\n"
      in
      let parsed = Vcd_reader.parse late in
      let q3 = Parser.property_exn ~name:"q3" "always (!ds || nexte[1,170](rdy)) @tb" in
      let outcomes = Tabv_checker.Replay.run [ q3 ] parsed.Vcd_reader.trace in
      Alcotest.(check bool) "failed" false (Tabv_checker.Replay.all_passed outcomes));
    case "end-to-end: recorded DES56 trace replays clean" (fun () ->
      (* Record a live simulation trace, then replay the RTL property
         set offline over it. *)
      let ops = Tabv_duv.Workload.des56 ~seed:31 ~count:8 ~zero_fraction:0.5 ~decrypt_fraction:0.5 () in
      let result = Tabv_duv.Testbench.run_des56_rtl ~record_trace:true ops in
      match result.Tabv_duv.Testbench.trace with
      | None -> Alcotest.fail "no trace"
      | Some trace ->
        let outcomes = Tabv_checker.Replay.run Tabv_duv.Des56_props.all trace in
        Alcotest.(check bool) "all pass" true (Tabv_checker.Replay.all_passed outcomes);
        List.iter
          (fun (outcome : Tabv_checker.Replay.outcome) ->
            if outcome.Tabv_checker.Replay.property.Property.name <> "p8" then
              Alcotest.(check bool)
                (outcome.Tabv_checker.Replay.property.Property.name ^ " not vacuous")
                false
                (Tabv_checker.Monitor.vacuous outcome.Tabv_checker.Replay.monitor))
          outcomes) ]

let suite = ("vcd_replay", reader_cases @ roundtrip_cases @ replay_cases)
